"""Unit tests for the interprocedural call-graph engine.

The engine (``repro.analysis.callgraph``) indexes every module in the
tree, binds ``self.<attr>`` method calls through constructor-assigned
types, chases ``from x import y`` re-export chains, and resolves the
predictor registry's ``partial(factory, ...)`` indirection — the
machinery the ``perf`` family's hot-closure computation stands on.
"""

import ast
from pathlib import Path

import pytest

from repro.analysis.callgraph import CallGraph
from repro.analysis.findings import canonical_file
from repro.analysis.rules import ModuleSource, collect_sources, module_name_for

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

#: Registry names expected from orchestration/registry.standard_registry.
REGISTERED = {
    "bimodal",
    "gshare",
    "filter",
    "perceptron",
    "oh-snap",
    "tage10",
    "tage15",
    "isl-tage10",
    "isl-tage15",
    "bf-tage10",
    "bf-neural",
    "bf-neural-32k",
    "bf-neural-ahead",
}

#: Predictors whose predict/train genuinely call no helpers.
SELF_CONTAINED = {"bimodal", "perceptron"}


@pytest.fixture(scope="module")
def graph():
    return CallGraph(collect_sources([SRC]))


def source_from_text(text, filename="synthetic.py"):
    path = Path(filename)
    return ModuleSource(
        path=path,
        module=module_name_for(path),
        relpath=canonical_file(filename),
        tree=ast.parse(text, filename=filename),
    )


class TestRegistryResolution:
    def test_all_registered_predictors_resolve(self, graph):
        registry = graph.registered_predictors()
        assert set(registry) == REGISTERED
        for name, class_qualname in registry.items():
            assert class_qualname in graph.classes, name

    def test_partial_wrapped_factories_chase_return_classes(self, graph):
        registry = graph.registered_predictors()
        assert registry["tage10"] == "repro.predictors.tage.tage.Tage"
        assert registry["bf-neural"] == "repro.core.bfneural.BFNeural"
        assert registry["bf-neural-ahead"] == "repro.core.ahead.AheadPipelinedBFNeural"


class TestSymbolResolution:
    def test_import_alias_chases_reexport_chain(self, graph):
        # repro/predictors/__init__.py re-exports Tage from the package.
        assert (
            graph.resolve_symbol("repro.predictors.Tage")
            == "repro.predictors.tage.tage.Tage"
        )

    def test_self_attr_types_bound_from_constructor(self, graph):
        tage = "repro.predictors.tage.tage.Tage"
        assert graph.attr_type(tage, "_rng") == "repro.common.rng.XorShift64"
        # List element types resolve for `self.tables[i].method(...)`.
        assert (
            graph.attr_elem_type(tage, "tables")
            == "repro.predictors.tage.components.TaggedTable"
        )


class TestCallResolution:
    def test_self_method_binding(self, graph):
        callees = graph.callees("repro.predictors.tage.tage.Tage.predict")
        assert "repro.predictors.tage.tage.Tage._compute_indices" in callees

    def test_virtual_dispatch_includes_subclass_overrides(self, graph):
        # Tage.predict calls self._compute_indices; BFTage overrides it,
        # so the over-approximated closure must include the override.
        callees = graph.callees("repro.predictors.tage.tage.Tage.predict")
        assert "repro.core.bftage.BFTage._compute_indices" in callees

    def test_closure_reaches_rng_through_allocation(self, graph):
        train = "repro.predictors.tage.tage.Tage.train"
        closure = graph.transitive_closure([train])
        assert "repro.common.rng.XorShift64.next_u64" in closure
        chain = closure["repro.common.rng.XorShift64.next_u64"]
        assert chain[0] == train and chain[-1] == "repro.common.rng.XorShift64.next_u64"

    def test_inline_self_method_and_alias(self):
        sources = [
            source_from_text(
                "class Helper:\n"
                "    def work(self):\n"
                "        return 1\n"
                "class Owner:\n"
                "    def __init__(self):\n"
                "        self.helper = Helper()\n"
                "    def run(self):\n"
                "        return self.helper.work()\n"
            )
        ]
        graph = CallGraph(sources)
        assert graph.callees("synthetic.Owner.run") == frozenset(
            {"synthetic.Helper.work"}
        )


class TestHotClosure:
    def test_predict_resolves_for_every_registered_predictor(self, graph):
        registry = graph.registered_predictors()
        for name, class_qualname in registry.items():
            predict = graph.method(class_qualname, "predict")
            train = graph.method(class_qualname, "train")
            assert predict is not None, name
            assert train is not None, name
            closure = graph.transitive_closure([predict.qualname, train.qualname])
            helpers = set(closure) - {predict.qualname, train.qualname}
            if name in SELF_CONTAINED:
                assert not helpers, name
            else:
                assert helpers, name

    def test_hot_path_marker_registers_roots(self, graph):
        roots = graph.hot_roots()
        assert "repro.sim.simulator._run_counting" in roots
        assert "repro.sim.simulator._run_tracked" in roots
        assert roots["repro.sim.simulator._run_counting"].startswith("@hot_path")

    def test_predictor_entry_points_are_roots(self, graph):
        roots = graph.hot_roots()
        assert "repro.predictors.tage.tage.Tage.predict" in roots
        assert "repro.predictors.tage.tage.Tage.train" in roots

    def test_closure_chains_start_at_a_root(self, graph):
        roots = list(graph.hot_roots())
        closure = graph.transitive_closure(roots)
        root_set = set(roots)
        for qualname, chain in closure.items():
            assert chain[0] in root_set, qualname
            assert chain[-1] == qualname
