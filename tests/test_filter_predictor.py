"""Tests for the Filter predictor (related work baseline)."""

import pytest

from repro.predictors import GShare
from repro.predictors.filter import FilterPredictor
from repro.sim import simulate
from repro.trace.records import Trace, TraceMetadata


def trace_of(events):
    meta = TraceMetadata(name="t", category="SPEC", instruction_count=max(1, len(events) * 5))
    return Trace(meta, [pc for pc, _ in events], [t for _, t in events])


class TestFilterMechanics:
    def test_branch_becomes_filtered_after_saturation(self):
        p = FilterPredictor(saturation=4)
        for _ in range(4):
            p.train(0x40, True)
        assert p._is_filtered(0x40)
        assert p.predict(0x40)

    def test_direction_change_resets_filter(self):
        p = FilterPredictor(saturation=4)
        for _ in range(6):
            p.train(0x40, True)
        p.train(0x40, False)
        assert not p._is_filtered(0x40)
        assert p._entry(0x40).count == 1

    def test_filtered_branch_does_not_touch_pht(self):
        p = FilterPredictor(saturation=2, history_bits=4)
        # Saturate the filter with not-taken outcomes while history is 0.
        p._history = 0
        pht_before = list(p._pht)
        for _ in range(2):
            p.train(0x40, False)
        changed_during_warmup = p._pht != pht_before
        assert changed_during_warmup  # unfiltered updates touched the PHT
        snapshot = list(p._pht)
        p._history = 0
        p.train(0x40, False)  # now filtered: PHT must stay untouched
        assert p._pht == snapshot

    def test_all_branches_still_enter_history(self):
        """The key contrast with bias-free prediction."""
        p = FilterPredictor(saturation=1, history_bits=8)
        p.train(0x40, True)
        p.train(0x40, True)
        assert p._history == 0b11

    def test_validation(self):
        with pytest.raises(ValueError):
            FilterPredictor(pht_entries=100)
        with pytest.raises(ValueError):
            FilterPredictor(filter_entries=100)
        with pytest.raises(ValueError):
            FilterPredictor(saturation=0)

    def test_storage_bits(self):
        assert FilterPredictor().storage_bits() > 65536 * 2


class TestFilterEffect:
    def test_beats_gshare_on_bias_heavy_traces(self):
        """The PACT'96 result: filtering biased branches out of the PHT
        wins clearly on workloads with heavy biased-branch content."""
        from repro.workloads import build_trace

        for name in ("FP1", "SPEC08"):
            trace = build_trace(name, 15000)
            filtered = simulate(FilterPredictor(), trace)
            plain = simulate(GShare(), trace)
            assert filtered.mpki < plain.mpki

    def test_does_not_extend_history_reach(self):
        """Filtering the PHT does NOT let a correlation at distance 40
        fit an 8-bit history — only bias-free *history* filtering can."""
        from tests.test_neural_predictors import correlated_stream, follower_misses

        p = FilterPredictor(history_bits=8, saturation=8)
        misses, seen = follower_misses(p, correlated_stream(40, activations=300), skip=100)
        assert misses > 0.3 * seen
