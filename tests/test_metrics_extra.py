"""Additional coverage: TAGE internals, runner verbosity, config edges."""

import pytest

from repro.core.bftage import BFTage, BFTageConfig
from repro.predictors import Tage, TageConfig
from repro.predictors.tage.tage import MAX_HISTORY_BY_TABLES, _default_sizing
from repro.sim.runner import Campaign, run_campaign
from repro.trace.records import Trace, TraceMetadata


def trace_of(events, name="t"):
    meta = TraceMetadata(name=name, category="SPEC", instruction_count=max(1, len(events) * 5))
    return Trace(meta, [pc for pc, _ in events], [t for _, t in events])


class TestSizing:
    def test_table_i_sizing_for_10(self):
        log2, tags = _default_sizing(10)
        assert log2 == [11, 11, 11, 12, 12, 12, 11, 11, 10, 10]
        assert tags == [7, 7, 8, 9, 10, 11, 11, 13, 14, 15]

    @pytest.mark.parametrize("count", [4, 6, 8, 12, 15])
    def test_sizing_shapes(self, count):
        log2, tags = _default_sizing(count)
        assert len(log2) == len(tags) == count
        assert all(7 <= t <= 15 for t in tags)
        assert tags == sorted(tags)

    def test_15_table_budget_below_64kb(self):
        predictor = Tage(TageConfig.for_tables(15))
        assert predictor.storage_bits() / 8 / 1024 < 64

    def test_max_history_map_is_monotone(self):
        counts = sorted(MAX_HISTORY_BY_TABLES)
        values = [MAX_HISTORY_BY_TABLES[c] for c in counts]
        assert values == sorted(values)


class TestUsefulBitDynamics:
    def test_useful_reset_fires(self):
        config = TageConfig(num_tables=4, useful_reset_period=64)
        predictor = Tage(config)
        table = predictor.tables[0]
        table.useful[0] = 3
        for i in range(64):
            predictor.predict(0x40)
            predictor.train(0x40, bool(i % 3))
        assert table.useful[0] <= 1  # aged at least once

    def test_allocation_on_misprediction(self):
        predictor = Tage(TageConfig.for_tables(4))
        # Drive an unpredictable branch; tagged entries must appear.
        import random

        rnd = random.Random(9)
        for _ in range(200):
            predictor.predict(0x40)
            predictor.train(0x40, rnd.random() < 0.5)
        allocated = sum(
            1 for table in predictor.tables for tag in table.tag if tag != 0
        )
        assert allocated > 0


class TestBFTageConfigEdges:
    def test_custom_boundaries(self):
        config = BFTageConfig(
            num_tables=4, boundaries=[16, 64, 256], rs_size=4
        )
        predictor = BFTage(config)
        assert predictor.segments.num_segments == 2

    def test_probabilistic_bst_variant(self):
        config = BFTageConfig(num_tables=4, probabilistic_bst=True)
        predictor = BFTage(config)
        assert predictor.bst.probabilistic
        for i in range(100):
            predictor.predict(0x40)
            predictor.train(0x40, bool(i & 1))

    def test_unfiltered_bits_must_fit_first_boundary(self):
        with pytest.raises(ValueError):
            BFTage(BFTageConfig(num_tables=4, boundaries=[8, 64], unfiltered_bits=16))


class TestRunnerVerbose:
    def test_verbose_prints_progress(self, capsys):
        from repro.predictors import AlwaysTaken

        campaign = Campaign(
            factories={"always": AlwaysTaken},
            traces=[trace_of([(4, True)] * 30, name="V1")],
            verbose=True,
        )
        run_campaign(campaign)
        out = capsys.readouterr().out
        assert "V1" in out and "mpki" in out
