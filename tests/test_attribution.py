"""Tests for the misprediction attribution tool."""

import pytest

from repro.predictors import AlwaysTaken, Bimodal
from repro.sim.attribution import (
    AttributionResult,
    BranchAttribution,
    attribute,
    format_attribution,
)
from repro.trace.records import Trace, TraceMetadata


def trace_of(events, name="t"):
    meta = TraceMetadata(name=name, category="SPEC", instruction_count=max(1, len(events) * 5))
    return Trace(meta, [pc for pc, _ in events], [t for _, t in events])


class TestAttribute:
    def test_counts_per_branch(self):
        events = [(4, True), (4, False), (8, False), (8, False)]
        result = attribute(AlwaysTaken(), trace_of(events))
        assert result.branches[4].executions == 2
        assert result.branches[4].mispredictions == 1
        assert result.branches[8].mispredictions == 2

    def test_total(self):
        events = [(4, False)] * 5
        result = attribute(AlwaysTaken(), trace_of(events))
        assert result.total_mispredictions == 5

    def test_predictor_trains_during_attribution(self):
        events = [(4, False)] * 50
        result = attribute(Bimodal(), trace_of(events))
        assert result.branches[4].mispredictions <= 2

    def test_provider_tracking(self):
        events = [(4, False)] * 3
        result = attribute(AlwaysTaken(), trace_of(events), track_providers=True)
        assert result.provider_misses == {"always-taken": 3}

    def test_no_provider_tracking_by_default(self):
        result = attribute(AlwaysTaken(), trace_of([(4, False)]))
        assert result.provider_misses == {}


class TestRanking:
    def make_result(self):
        return AttributionResult(
            trace_name="t",
            predictor_name="p",
            branches={
                1: BranchAttribution(1, 10, 8),
                2: BranchAttribution(2, 10, 3),
                3: BranchAttribution(3, 10, 5),
            },
        )

    def test_top_offenders_order(self):
        result = self.make_result()
        assert [b.pc for b in result.top_offenders(2)] == [1, 3]

    def test_concentration(self):
        result = self.make_result()
        assert result.concentration(1) == pytest.approx(8 / 16)
        assert result.concentration(10) == 1.0

    def test_concentration_empty(self):
        result = AttributionResult(trace_name="t", predictor_name="p")
        assert result.concentration() == 0.0

    def test_misprediction_rate(self):
        assert BranchAttribution(1, 4, 1).misprediction_rate == 0.25
        assert BranchAttribution(1, 0, 0).misprediction_rate == 0.0


class TestFormatting:
    def test_format_contains_offenders(self):
        events = [(0xABC, False)] * 4
        result = attribute(AlwaysTaken(), trace_of(events, name="TX"))
        text = format_attribution(result, count=3)
        assert "TX" in text
        assert "0xabc" in text
        assert "100.0%" in text


class TestCLIDiagnose:
    def test_diagnose_subcommand(self, capsys):
        from repro.cli import main

        assert main(["diagnose", "FP1", "--predictor", "bimodal",
                     "--branches", "800", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "misprediction attribution" in out

    def test_diagnose_unknown_predictor(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["diagnose", "FP1", "--predictor", "nope"])
