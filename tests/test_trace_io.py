"""Round-trip and corruption tests for the BFBP binary trace format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.io import (
    TraceFormatError,
    read_trace,
    trace_from_bytes,
    trace_to_bytes,
    write_trace,
)
from repro.trace.records import Trace, TraceMetadata


def roundtrip(trace, tmp_path):
    path = tmp_path / "trace.bfbp"
    write_trace(trace, path)
    return read_trace(path)


class TestRoundTrip:
    def test_simple(self, tmp_path):
        meta = TraceMetadata(name="A", category="SPEC", instruction_count=50, seed=7)
        trace = Trace(meta, [16, 20, 16, 1000], [True, False, False, True])
        back = roundtrip(trace, tmp_path)
        assert back.pcs == trace.pcs
        assert back.outcomes == trace.outcomes
        assert back.metadata.name == "A"
        assert back.metadata.seed == 7
        assert back.instruction_count == 50

    def test_empty_trace(self, tmp_path):
        meta = TraceMetadata(name="E", category="FP", instruction_count=1)
        back = roundtrip(Trace(meta, [], []), tmp_path)
        assert len(back) == 0

    def test_extra_metadata(self, tmp_path):
        meta = TraceMetadata(
            name="X", category="MM", instruction_count=5, extra={"bias": 0.5}
        )
        back = roundtrip(Trace(meta, [4], [True]), tmp_path)
        assert back.metadata.extra == {"bias": 0.5}

    def test_large_pcs(self, tmp_path):
        meta = TraceMetadata(name="L", category="INT", instruction_count=10)
        pcs = [2**32 - 4, 0, 2**31]
        back = roundtrip(Trace(meta, pcs, [True, True, False]), tmp_path)
        assert back.pcs == pcs

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=2**32 - 1), st.booleans()),
            max_size=300,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_streams(self, events):
        import tempfile
        from pathlib import Path

        meta = TraceMetadata(name="H", category="SERV", instruction_count=max(1, len(events)))
        trace = Trace(meta, [pc for pc, _ in events], [t for _, t in events])
        with tempfile.TemporaryDirectory() as tmp:
            back = roundtrip(trace, Path(tmp))
        assert back.pcs == trace.pcs
        assert back.outcomes == trace.outcomes


_events = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2**32 - 1), st.booleans()),
    max_size=200,
)


def _trace_of(events):
    meta = TraceMetadata(
        name="P", category="SPEC", instruction_count=max(1, 5 * len(events)), seed=3
    )
    return Trace(meta, [pc for pc, _ in events], [t for _, t in events])


class TestByteIdentity:
    """write → read → write is byte-identical, and read is record-identical."""

    @given(_events)
    @settings(max_examples=40, deadline=None)
    def test_write_read_write_is_byte_identical(self, events):
        trace = _trace_of(events)
        data = trace_to_bytes(trace)
        back = trace_from_bytes(data)
        assert trace_to_bytes(back) == data
        assert back.pcs == trace.pcs
        assert back.outcomes == trace.outcomes
        assert back.metadata == trace.metadata

    @given(_events, st.dictionaries(st.text(min_size=1, max_size=8),
                                    st.floats(allow_nan=False, allow_infinity=False),
                                    max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_metadata_extras_survive(self, events, extra):
        meta = TraceMetadata(
            name="Q", category="MM", instruction_count=7, seed=1, extra=extra
        )
        trace = Trace(meta, [pc for pc, _ in events], [t for _, t in events])
        back = trace_from_bytes(trace_to_bytes(trace))
        assert back.metadata.extra == extra


class TestCorruptionFuzz:
    """Any corrupted byte is a hard TraceFormatError, never a wrong read."""

    @given(_events, st.data())
    @settings(max_examples=60, deadline=None)
    def test_single_byte_corruption_always_raises(self, events, data):
        original = trace_to_bytes(_trace_of(events))
        index = data.draw(st.integers(min_value=0, max_value=len(original) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        corrupt = bytearray(original)
        corrupt[index] ^= flip
        with pytest.raises(TraceFormatError) as excinfo:
            trace_from_bytes(bytes(corrupt))
        # The found version is propagated: None only for a broken magic,
        # the (corrupted) byte itself for a version flip, 2 otherwise.
        if index < 4:
            assert excinfo.value.version is None
        elif index == 4:
            assert excinfo.value.version == corrupt[4]
        else:
            assert excinfo.value.version == 2

    @given(_events, st.data())
    @settings(max_examples=40, deadline=None)
    def test_truncation_always_raises(self, events, data):
        original = trace_to_bytes(_trace_of(events))
        cut = data.draw(st.integers(min_value=0, max_value=len(original) - 1))
        with pytest.raises(TraceFormatError):
            trace_from_bytes(original[:cut])

    def test_v1_files_are_refused_not_misread(self):
        # A version-1 file (no checksum trailer) must be rejected with
        # its version in the error — not parsed by guesswork.
        original = bytearray(trace_to_bytes(_trace_of([(16, True), (20, False)])))
        original[4] = 1
        with pytest.raises(TraceFormatError, match="version 1") as excinfo:
            trace_from_bytes(bytes(original))
        assert excinfo.value.version == 1


class TestFormatErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bfbp"
        path.write_bytes(b"NOPE" + b"\x00" * 20)
        with pytest.raises(TraceFormatError, match="magic") as excinfo:
            read_trace(path)
        assert excinfo.value.version is None

    def test_bad_version(self, tmp_path):
        path = tmp_path / "bad.bfbp"
        path.write_bytes(b"BFBP\xff" + b"\x00" * 20)
        with pytest.raises(TraceFormatError, match="version 255") as excinfo:
            read_trace(path)
        assert excinfo.value.version == 255

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "bad.bfbp"
        path.write_bytes(b"BFBP")
        with pytest.raises(TraceFormatError, match="truncated"):
            read_trace(path)

    def test_format_error_is_value_error(self, tmp_path):
        # Existing callers catching ValueError keep working.
        path = tmp_path / "bad.bfbp"
        path.write_bytes(b"NOPE" + b"\x00" * 20)
        with pytest.raises(ValueError):
            read_trace(path)


class TestSuiteTraceRoundTrip:
    def test_generated_trace_roundtrips(self, tmp_path):
        from repro.workloads import build_trace

        trace = build_trace("FP1", 2000)
        back = roundtrip(trace, tmp_path)
        assert back.pcs == trace.pcs
        assert back.outcomes == trace.outcomes
        assert back.metadata.category == "FP"

    def test_compression_is_effective(self, tmp_path):
        from repro.workloads import build_trace

        trace = build_trace("SPEC00", 5000)
        path = tmp_path / "t.bfbp"
        write_trace(trace, path)
        raw_size = len(trace) * 5  # 4-byte pc + 1-bit outcome, roughly
        assert path.stat().st_size < raw_size
