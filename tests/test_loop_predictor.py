"""Tests for the loop-count predictor."""

import pytest

from repro.predictors.loop import LoopOnly, LoopPredictor


def run_loop(predictor, pc, trip, iterations=1):
    """Feed `iterations` full loop executions; return predictions made at
    the exit iteration of the final execution."""
    for _ in range(iterations):
        for i in range(trip):
            predictor.update(pc, i < trip - 1, allocate=True)


class TestLoopPredictor:
    def test_learns_constant_trip(self):
        loop = LoopPredictor()
        pc = 0x500
        # Train: several identical executions of a 7-iteration loop.
        for _ in range(6):
            for i in range(7):
                loop.update(pc, i < 6)
        # Now walk one more execution checking predictions.
        for i in range(7):
            prediction, confident = loop.lookup(pc)
            assert confident
            assert prediction == (i < 6)
            loop.update(pc, i < 6)

    def test_not_confident_initially(self):
        loop = LoopPredictor()
        _, confident = loop.lookup(0x500)
        assert not confident

    def test_confidence_resets_on_trip_change(self):
        loop = LoopPredictor()
        pc = 0x500
        for _ in range(6):
            for i in range(5):
                loop.update(pc, i < 4)
        _, confident = loop.lookup(pc)
        assert confident
        # A different trip count destroys confidence.
        for i in range(9):
            loop.update(pc, i < 8)
        _, confident = loop.lookup(pc)
        assert not confident

    def test_allocation_only_on_not_taken(self):
        loop = LoopPredictor()
        loop.update(0x500, True, allocate=True)  # taken: no allocation
        assert loop._find(0x500) is None
        loop.update(0x500, False, allocate=True)
        assert loop._find(0x500) is not None

    def test_no_allocation_when_disabled(self):
        loop = LoopPredictor()
        loop.update(0x500, False, allocate=False)
        assert loop._find(0x500) is None

    def test_giant_loop_retires_entry(self):
        loop = LoopPredictor()
        loop.update(0x500, False)
        for _ in range(LoopPredictor.TRIP_MAX + 2):
            loop.update(0x500, True)
        assert loop._find(0x500) is None

    def test_capacity_eviction(self):
        loop = LoopPredictor(entries=8, ways=4)
        for i in range(64):
            loop.update(0x100 + 8 * i, False)
        live = sum(
            1 for i in range(64) if loop._find(0x100 + 8 * i) is not None
        )
        assert live <= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            LoopPredictor(entries=10, ways=4)

    def test_storage_bits_positive(self):
        assert LoopPredictor().storage_bits() > 0


class TestLoopOnly:
    def test_wraps_loop_predictor(self):
        p = LoopOnly()
        pc = 0x500
        for _ in range(6):
            for i in range(4):
                p.train(pc, i < 3)
        # fourth iteration of a fresh execution is the exit
        for i in range(4):
            assert p.predict(pc) == (i < 3)
            p.train(pc, i < 3)

    def test_default_prediction_is_taken(self):
        assert LoopOnly().predict(0x123)
