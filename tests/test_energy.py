"""Tests for the access/energy accounting model."""

import pytest

from repro.core import BFTage, BFTageConfig, bf_neural_64kb
from repro.predictors import Bimodal, ISLTage, Tage, TageConfig
from repro.sim.energy import (
    AccessProfile,
    ArrayAccess,
    profile_bf_neural,
    profile_isl,
    profile_of,
    profile_tage,
)


class TestArrayAccess:
    def test_energy_grows_with_size(self):
        small = ArrayAccess("a", entries=1024, entry_bits=8)
        large = ArrayAccess("a", entries=4096, entry_bits=8)
        assert large.energy_units == pytest.approx(2 * small.energy_units)

    def test_energy_scales_with_reads(self):
        once = ArrayAccess("a", 1024, 8, reads_per_prediction=1)
        thrice = ArrayAccess("a", 1024, 8, reads_per_prediction=3)
        assert thrice.energy_units == pytest.approx(3 * once.energy_units)


class TestProfiles:
    def test_tage_profile_counts_every_table(self):
        predictor = Tage(TageConfig.for_tables(10))
        profile = profile_tage(predictor)
        names = [a.name for a in profile.arrays]
        assert "base-bimodal" in names
        assert sum(1 for n in names if n.startswith("T")) == 10

    def test_more_tables_cost_more_energy(self):
        """The §V argument: fewer tables -> lower energy/prediction."""
        e10 = profile_tage(Tage(TageConfig.for_tables(10))).energy_units
        e15 = profile_tage(Tage(TageConfig.for_tables(15))).energy_units
        assert e15 > e10

    def test_bf_tage_10_cheaper_than_tage_15(self):
        """The headline energy claim at matched accuracy."""
        bf10 = profile_tage(BFTage(BFTageConfig.for_tables(10))).energy_units
        t15 = profile_tage(Tage(TageConfig.for_tables(15))).energy_units
        assert bf10 < t15

    def test_bf_tage_profile_includes_bst(self):
        profile = profile_tage(BFTage(BFTageConfig.for_tables(10)))
        assert any(a.name == "bst" for a in profile.arrays)

    def test_isl_overlay_adds_components(self):
        isl = ISLTage(TageConfig.for_tables(10))
        base = profile_tage(isl.tage)
        overlay = profile_isl(isl)
        assert len(overlay.arrays) > len(base.arrays)
        assert any(a.name == "loop" for a in overlay.arrays)
        assert any(a.name == "sc" for a in overlay.arrays)

    def test_bf_neural_profile_gated_by_bias_fraction(self):
        predictor = bf_neural_64kb()
        cold = profile_bf_neural(predictor)
        # Make most branches non-biased, raising the measured fraction.
        for i in range(400):
            pc = 0x40 + 8 * (i % 20)
            predictor.predict(pc)
            predictor.train(pc, bool((i // 20) & 1))
        warm = profile_bf_neural(predictor)
        assert warm.total_reads > cold.total_reads

    def test_dispatch(self):
        assert profile_of(Tage(TageConfig.for_tables(4))).predictor_name == "tage"
        assert profile_of(bf_neural_64kb()).predictor_name == "bf-neural"
        assert profile_of(ISLTage(TageConfig.for_tables(4))).predictor_name == "isl-tage"
        generic = profile_of(Bimodal())
        assert generic.arrays  # generic fallback produced something

    def test_profile_totals(self):
        profile = AccessProfile("x")
        profile.add("a", 1024, 4, reads=2)
        profile.add("b", 256, 8)
        assert profile.total_reads == 3
        assert profile.total_bits_read == 16


class TestEnergyExperiment:
    def test_runs_small(self):
        from repro.experiments import common, energy_analysis

        parser = common.make_parser("x")
        args = parser.parse_args(
            ["--branches", "1200", "--traces", "FP1", "--cache-dir", ""]
        )
        report = energy_analysis.run(args)
        assert "energy" in report
        assert "BF-ISL-TAGE-10" in report
