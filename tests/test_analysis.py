"""Tests for the hardware-faithfulness static analyzer (repro.analysis)."""

from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    audit_bf_neural,
    audit_table1,
    lint_paths,
    lint_source,
    load_baseline,
    run_audits,
)
from repro.analysis.baseline import BaselineEntry, write_baseline
from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, main
from repro.analysis.findings import canonical_file

ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def rules_fired(path: Path) -> list[str]:
    return [finding.rule for finding in lint_paths([path])]


class TestFixtures:
    def test_unbounded_counter_fixture(self):
        findings = lint_paths([FIXTURES / "violation_counter.py"])
        assert [f.rule for f in findings] == ["REPRO001"] * 3
        lines = {f.line for f in findings}
        assert len(lines) == 3  # +=, -=, and the subscript increment
        assert all(f.symbol == "LeakyCounterPredictor.train" for f in findings)

    def test_guard_idioms_not_flagged(self):
        findings = lint_paths([FIXTURES / "violation_counter.py"])
        flagged_symbols = {f.symbol for f in findings}
        assert "LeakyCounterPredictor.bounded_ok" not in flagged_symbols
        assert "LeakyCounterPredictor.post_check_ok" not in flagged_symbols

    def test_config_fixture(self):
        findings = lint_paths([FIXTURES / "violation_config.py"])
        assert [f.rule for f in findings] == ["REPRO002"] * 2
        assert {f.symbol for f in findings} == {
            "SloppyConfig.table_entries",
            "SloppyConfig.wm_rows",
        }

    def test_float_fixture(self):
        findings = lint_paths([FIXTURES / "violation_float.py"])
        assert set(rules_fired(FIXTURES / "violation_float.py")) == {"REPRO003"}
        symbols = {f.symbol for f in findings}
        assert symbols == {
            "AnalogishPredictor.predict",
            "AnalogishPredictor.train",
        }
        # __init__ float and non-predict helpers are allowed.
        assert len(findings) == 3

    def test_nondet_fixture(self):
        findings = lint_paths([FIXTURES / "violation_nondet.py"])
        assert [f.rule for f in findings] == ["REPRO004"] * 3
        messages = " ".join(f.message for f in findings)
        assert "random" in messages
        assert "time" in messages
        assert "os.urandom" in messages

    def test_interface_fixture(self):
        findings = lint_paths([FIXTURES / "violation_interface.py"])
        assert [f.rule for f in findings] == ["REPRO005"]
        finding = findings[0]
        assert finding.symbol == "HalfBaked"
        for member in ("name", "storage_bits", "reset"):
            assert member in finding.message

    def test_snapshot_fixture(self):
        findings = lint_paths([FIXTURES / "violation_snapshot.py"])
        assert [f.rule for f in findings] == ["REPRO006"] * 2
        by_symbol = {f.symbol: f for f in findings}
        assert set(by_symbol) == {"NoSnapshot", "PartialSnapshot.shadow"}
        assert "no snapshot" in by_symbol["NoSnapshot"].message
        assert "self.shadow" in by_symbol["PartialSnapshot.shadow"].message

    def test_clean_fixture(self):
        assert lint_paths([FIXTURES / "clean.py"]) == []


class TestRuleEdgeCases:
    def test_enclosing_while_guard(self):
        code = (
            "class P:\n"
            "    def step(self):\n"
            "        while self.age < 10:\n"
            "            self.age += 1\n"
        )
        assert lint_source(code) == []

    def test_local_variables_exempt(self):
        code = "def f():\n    count = 0\n    count += 1\n    return count\n"
        assert lint_source(code) == []

    def test_augassign_by_two_exempt(self):
        # Only the canonical counter idiom (step of 1) is policed.
        code = "class P:\n    def step(self):\n        self.x += 2\n"
        assert lint_source(code) == []

    def test_log2_fields_exempt(self):
        code = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class XConfig:\n"
            "    log2_entries: int = 10\n"
            "    tag_bits: int = 7\n"
        )
        assert lint_source(code) == []

    def test_nonconfig_dataclass_exempt(self):
        code = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Stats:\n"
            "    sample_entries: int = 1000\n"
        )
        assert lint_source(code) == []

    def test_abstract_predictor_exempt(self):
        code = (
            "from abc import abstractmethod\n"
            "from repro.core.base import BranchPredictor\n"
            "class Partial(BranchPredictor):\n"
            "    @abstractmethod\n"
            "    def flush(self): ...\n"
        )
        assert lint_source(code) == []

    def test_snapshot_in_base_covers_subclass(self):
        # A subclass whose chain serializes the attr is covered even when
        # the _state_payload lives in the parent.
        code = (
            "from repro.core.base import BranchPredictor\n"
            "class Base(BranchPredictor):\n"
            "    name = 'b'\n"
            "    def __init__(self): self.table = [0] * 8\n"
            "    def predict(self, pc): return True\n"
            "    def train(self, pc, taken): pass\n"
            "    def storage_bits(self): return 0\n"
            "    def reset(self): pass\n"
            "    def _state_payload(self): return {'table': list(self.table)}\n"
            "    def _restore_payload(self, p): self.table = list(p['table'])\n"
            "class Child(Base):\n"
            "    name = 'c'\n"
        )
        assert lint_source(code) == []

    def test_config_construction_not_mutable_state(self):
        # *Config construction is configuration, not snapshot-worthy state.
        code = (
            "from repro.core.base import BranchPredictor\n"
            "class XConfig:\n"
            "    pass\n"
            "class P(BranchPredictor):\n"
            "    name = 'p'\n"
            "    def __init__(self): self.config = XConfig()\n"
            "    def predict(self, pc): return True\n"
            "    def train(self, pc, taken): pass\n"
            "    def storage_bits(self): return 0\n"
            "    def reset(self): pass\n"
        )
        assert lint_source(code) == []

    def test_inherited_members_satisfy_interface(self):
        code = (
            "from repro.core.base import BranchPredictor\n"
            "class Full(BranchPredictor):\n"
            "    name = 'full'\n"
            "    def predict(self, pc): return True\n"
            "    def train(self, pc, taken): pass\n"
            "    def storage_bits(self): return 0\n"
            "    def reset(self): pass\n"
            "class Child(Full):\n"
            "    name = 'child'\n"
        )
        assert lint_source(code) == []


class TestRepoIsClean:
    def test_src_lint_matches_baseline(self):
        findings = lint_paths([ROOT / "src"])
        baseline = load_baseline(ROOT / "analysis" / "baseline.json")
        new, suppressed, stale = baseline.split(findings)
        assert [f.render() for f in new] == []
        assert stale == []
        assert suppressed  # the justified exemptions are still present

    def test_baseline_entries_are_justified(self):
        baseline = load_baseline(ROOT / "analysis" / "baseline.json")
        assert baseline.unjustified() == []


class TestBaselineMechanics:
    def test_split_and_stale(self):
        findings = lint_paths([FIXTURES / "violation_config.py"])
        entry = BaselineEntry(
            rule="REPRO002",
            file="violation_config.py",
            symbol="SloppyConfig.table_entries",
            justification="test",
        )
        ghost = BaselineEntry(
            rule="REPRO001", file="gone.py", symbol="X.y", justification="test"
        )
        baseline = Baseline(entries=[entry, ghost])
        new, suppressed, stale = baseline.split(findings)
        assert [f.symbol for f in new] == ["SloppyConfig.wm_rows"]
        assert [f.symbol for f in suppressed] == ["SloppyConfig.table_entries"]
        assert stale == [ghost]

    def test_write_and_reload_roundtrip(self, tmp_path):
        findings = lint_paths([FIXTURES / "violation_config.py"])
        path = tmp_path / "baseline.json"
        write_baseline(path, findings, Baseline(entries=[]))
        baseline = load_baseline(path)
        new, suppressed, stale = baseline.split(findings)
        assert new == [] and stale == []
        assert len(suppressed) == len(findings)

    def test_missing_default_is_empty(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert load_baseline(None).entries == []

    def test_missing_explicit_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_baseline(tmp_path / "nope.json")

    def test_canonical_file_strips_to_src(self):
        assert canonical_file("/abs/prefix/src/repro/core/bst.py") == (
            "src/repro/core/bst.py"
        )
        assert canonical_file("tests/fixtures/analysis/clean.py") == "clean.py"


class TestStorageAudit:
    def test_table1_within_one_percent(self):
        result = audit_table1()
        assert result.ok
        deviation = abs(result.compare_total_bytes - result.budget_bytes)
        assert deviation / result.budget_bytes <= 0.01

    def test_table1_rows_sum_to_storage_bits(self):
        result = audit_table1()
        from repro.core.bftage import BFTage, BFTageConfig

        predictor = BFTage(BFTageConfig.for_tables(10))
        assert sum(r.model_bytes for r in result.rows) * 8 == predictor.storage_bits()

    def test_bf_neural_presets_within_budget(self):
        for name, kib in (("64", 64), ("32", 32)):
            result = audit_bf_neural(f"BF-Neural {name} KB", kib)
            assert result.ok, result.detail

    def test_component_mismatch_detected(self):
        from repro.core.configs import bf_neural_32kb

        predictor = bf_neural_32kb()
        honest = predictor.storage_bits
        predictor.storage_bits = lambda: honest() + 1024  # hide 128 bytes
        result = audit_bf_neural("tampered", 32, predictor=predictor)
        assert not result.ok
        assert "unaccounted" in result.detail

    def test_run_audits_all_ok(self):
        assert all(result.ok for result in run_audits())


class TestCli:
    def test_violations_exit_nonzero(self, capsys):
        code = main(
            [str(FIXTURES / "violation_counter.py"), "--no-audit", "--no-baseline"]
        )
        assert code == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "REPRO001" in out

    def test_src_with_baseline_exits_clean(self, capsys):
        code = main(
            [
                str(ROOT / "src"),
                "--baseline",
                str(ROOT / "analysis" / "baseline.json"),
                "--no-audit",
            ]
        )
        assert code == EXIT_CLEAN
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_audit_only(self, capsys):
        assert main(["--audit-only"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in (
            "REPRO001",
            "REPRO002",
            "REPRO003",
            "REPRO004",
            "REPRO005",
            "REPRO006",
        ):
            assert rule_id in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        target = str(FIXTURES / "violation_float.py")
        baseline_path = tmp_path / "b.json"
        assert (
            main([target, "--no-audit", "--write-baseline", str(baseline_path)])
            == EXIT_CLEAN
        )
        assert (
            main([target, "--no-audit", "--baseline", str(baseline_path)])
            == EXIT_CLEAN
        )

    def test_json_output(self, capsys):
        import json

        code = main(
            [
                str(FIXTURES / "violation_nondet.py"),
                "--no-audit",
                "--no-baseline",
                "--json",
            ]
        )
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"REPRO004"}


class TestStorageTableRegression:
    def test_rows_sum_exactly_to_total(self):
        from repro.core.configs import bf_tage_storage_table

        rows = dict(bf_tage_storage_table(10))
        total = rows.pop("Total")
        assert sum(rows.values()) == total  # exact, not approximate

    def test_bits_rows_match_predictor(self):
        from repro.core.bftage import BFTage, BFTageConfig
        from repro.core.configs import bf_tage_storage_bits

        predictor = BFTage(BFTageConfig.for_tables(10))
        assert sum(b for _, b in bf_tage_storage_bits(10)) == predictor.storage_bits()

    def test_results_file_is_current(self):
        from repro.experiments import table1_storage

        recorded = (ROOT / "results" / "table1.txt").read_text()
        assert recorded.strip() == table1_storage.run(None).strip()


@pytest.mark.skipif(
    __import__("shutil").which("ruff") is None,
    reason="ruff not installed in this environment",
)
class TestRuffConfig:
    def test_ruff_clean(self):
        import subprocess

        result = subprocess.run(
            ["ruff", "check", "src", "tests", "examples", "scripts"],
            cwd=ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr


class TestReset:
    @staticmethod
    def _exercise(predictor, branches=400):
        state = 0x9E3779B97F4A7C15
        for i in range(branches):
            state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            pc = (state >> 20) & 0xFFFF
            taken = bool((state >> 13) & 1)
            predictor.predict(pc)
            predictor.train(pc, taken)

    def _assert_reset_restores(self, make):
        trained = make()
        fresh = make()
        self._exercise(trained)
        trained.reset()
        probes = [4 * i + 1 for i in range(256)]
        assert [trained.predict(pc) for pc in probes] == [
            fresh.predict(pc) for pc in probes
        ]
        assert trained.storage_bits() == fresh.storage_bits()

    def test_gshare_reset(self):
        from repro.predictors.gshare import GShare

        self._assert_reset_restores(lambda: GShare(entries=1024, history_bits=8))

    def test_perceptron_reset(self):
        from repro.predictors.perceptron import GlobalPerceptron

        self._assert_reset_restores(
            lambda: GlobalPerceptron(rows=64, history_length=12)
        )

    def test_loop_reset(self):
        from repro.predictors.loop import LoopOnly

        self._assert_reset_restores(LoopOnly)

    def test_bfneural_reset(self):
        from repro.core.configs import bf_neural_32kb

        self._assert_reset_restores(bf_neural_32kb)

    def test_reset_lives_in_every_shipping_predictor(self):
        # The REPRO005 sweep over src/ is the authoritative check; assert
        # it finds no interface gaps at all (baseline has no REPRO005).
        findings = [
            f for f in lint_paths([ROOT / "src"]) if f.rule == "REPRO005"
        ]
        assert findings == []
