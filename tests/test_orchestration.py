"""Tests for the campaign orchestration engine.

Covers the acceptance points of the orchestration subsystem: parallel
execution is bit-identical to serial, an interrupted/partially-failed
manifest resumes without recomputing done tasks, fingerprints invalidate
when a config field changes, corrupt cache entries are surfaced and
purged, timeouts restart wedged workers, and the telemetry event schema
round-trips through its JSONL encoding.

Predictor helpers live at module level so they pickle by reference into
scheduler worker processes.
"""

import json
import multiprocessing
from dataclasses import dataclass
from functools import partial
from pathlib import Path

import pytest

from repro.orchestration import (
    CampaignError,
    CampaignManifest,
    CampaignPlan,
    ResultStore,
    StateStore,
    Telemetry,
    TraceSpec,
    make_event,
    predictor_fingerprint,
    read_events,
    run_plan,
    standard_registry,
    task_fingerprint,
    trace_content_fingerprint,
    validate_event,
    warm_context_key,
)
from repro.orchestration.engine import build_tasks
from repro.orchestration.manifest import STATUS_DONE, STATUS_FAILED
from repro.predictors import AlwaysTaken, Bimodal, GShare
from repro.sim import simulate
from repro.sim.metrics import SimulationResult
from repro.trace.records import Trace, TraceMetadata
from repro.workloads import build_trace

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel scheduler tests rely on the fork start method",
)


def trace_of(events, name="t"):
    meta = TraceMetadata(
        name=name, category="SPEC", instruction_count=max(1, len(events) * 5)
    )
    return Trace(meta, [pc for pc, _ in events], [t for _, t in events])


@dataclass(frozen=True)
class ToyConfig:
    """Minimal *Config stand-in for fingerprint invalidation tests."""

    depth: int = 4
    threshold: int = 9


class ToyPredictor(AlwaysTaken):
    name = "toy"

    def __init__(self, config: ToyConfig = ToyConfig()) -> None:
        self.config = config


def make_toy(depth: int) -> ToyPredictor:
    return ToyPredictor(ToyConfig(depth=depth))


class FlakyPredictor(Bimodal):
    """Behaves like bimodal, but explodes while a marker file exists."""

    name = "flaky"

    def __init__(self, marker: str) -> None:
        super().__init__()
        self.marker = marker

    def predict(self, pc: int) -> bool:
        if Path(self.marker).exists():
            raise RuntimeError("injected task failure")
        return super().predict(pc)


def make_flaky(marker: str) -> FlakyPredictor:
    return FlakyPredictor(marker)


class HangingPredictor(AlwaysTaken):
    name = "hang"

    def predict(self, pc: int) -> bool:
        while True:
            pass


class CrashOncePredictor(Bimodal):
    """Bimodal that dies once, mid-trace, while a marker file exists.

    The marker is consumed by the crash, so the retry runs clean — the
    shape of a transient mid-sweep fault (OOM kill, node preemption).
    """

    name = "crashy"

    def __init__(self, marker: str, crash_at: int = 150) -> None:
        super().__init__()
        self.marker = marker
        self.crash_at = crash_at
        self.calls = 0

    def predict(self, pc: int) -> bool:
        self.calls += 1
        if self.calls >= self.crash_at and Path(self.marker).exists():
            Path(self.marker).unlink()
            raise RuntimeError("injected mid-trace crash")
        return super().predict(pc)


def make_crashy(marker: str) -> CrashOncePredictor:
    return CrashOncePredictor(marker)


class TestFingerprint:
    def test_stable_across_instances(self):
        assert predictor_fingerprint(make_toy(4)) == predictor_fingerprint(make_toy(4))

    def test_config_field_change_invalidates(self):
        assert predictor_fingerprint(make_toy(4)) != predictor_fingerprint(make_toy(5))

    def test_distinct_predictors_distinct(self):
        assert predictor_fingerprint(Bimodal()) != predictor_fingerprint(GShare())

    def test_trace_content_sensitive(self):
        a = trace_of([(4, True), (8, False)])
        b = trace_of([(4, True), (8, True)])
        assert trace_content_fingerprint(a) != trace_content_fingerprint(b)

    def test_suite_spec_identity_includes_budget(self):
        assert (
            TraceSpec.suite("FP1", 500).identity()
            != TraceSpec.suite("FP1", 600).identity()
        )

    def test_track_providers_changes_key(self):
        fp = predictor_fingerprint(Bimodal())
        identity = TraceSpec.suite("FP1", 500).identity()
        assert task_fingerprint(fp, identity, False) != task_fingerprint(
            fp, identity, True
        )


class TestResultStore:
    def result(self):
        return SimulationResult(
            trace_name="t", predictor_name="p", branches=10,
            instructions=100, mispredictions=3,
        )

    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store("abc", self.result())
        assert store.load("abc") == self.result()

    def test_corrupt_entry_emits_event_and_purges(self, tmp_path):
        events = []
        telemetry = Telemetry(subscribers=(events.append,))
        store = ResultStore(tmp_path, telemetry)
        store.path_for("bad").parent.mkdir(parents=True, exist_ok=True)
        store.path_for("bad").write_text("{not json")
        assert store.load("bad") is None
        assert not store.path_for("bad").exists()
        assert [e["event"] for e in events] == ["cache_corrupt"]

    def test_mismatched_schema_is_corrupt(self, tmp_path):
        events = []
        store = ResultStore(tmp_path, Telemetry(subscribers=(events.append,)))
        store.path_for("bad").parent.mkdir(parents=True, exist_ok=True)
        store.path_for("bad").write_text(json.dumps({"trace_name": "t"}))
        assert store.load("bad") is None
        assert events and events[0]["event"] == "cache_corrupt"

    def test_negative_count_is_corrupt(self, tmp_path):
        store = ResultStore(tmp_path)
        store.path_for("bad").parent.mkdir(parents=True, exist_ok=True)
        store.path_for("bad").write_text(
            json.dumps(
                {
                    "trace_name": "t", "predictor_name": "p", "branches": -1,
                    "instructions": 100, "mispredictions": 0,
                }
            )
        )
        assert store.load("bad") is None


class TestTelemetrySchema:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_event("no_such_event", foo=1)

    def test_missing_required_field_rejected(self):
        with pytest.raises(ValueError):
            validate_event({"v": 1, "ts": 0.0, "event": "task_start", "index": 1})

    def test_schema_declares_distribution_kinds(self):
        from repro.orchestration.telemetry import EVENT_FIELDS, SCHEMA_VERSION

        assert SCHEMA_VERSION == 4
        assert EVENT_FIELDS["executor_join"] == ("executor",)
        assert EVENT_FIELDS["executor_dead"] == ("executor", "reason")
        assert EVENT_FIELDS["lease_grant"] == (
            "index", "config", "trace", "executor", "lease_id",
        )
        assert EVENT_FIELDS["lease_expire"] == ("index", "executor", "lease_id")

    def test_v3_kinds_validate(self):
        make_event("executor_join", executor="host-1")
        make_event("executor_dead", executor="host-1", reason="connection lost")
        make_event(
            "lease_grant", index=0, config="bimodal", trace="FP1",
            executor="host-1", lease_id="L1",
        )
        make_event("lease_expire", index=0, executor="host-1", lease_id="L1")

    def test_v3_kinds_require_fields(self):
        with pytest.raises(ValueError, match="lease_id"):
            make_event("lease_grant", index=0, config="b", trace="FP1",
                       executor="host-1")
        with pytest.raises(ValueError, match="reason"):
            make_event("executor_dead", executor="host-1")

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with Telemetry(jsonl_path=path) as telemetry:
            telemetry.emit("campaign_start", campaign_id="x", total_tasks=2, jobs=2)
            telemetry.emit(
                "task_start", index=0, config="a", trace="FP1", attempt=1
            )
            telemetry.emit(
                "task_finish", index=0, config="a", trace="FP1",
                elapsed_s=0.5, mpki=1.25,
            )
            telemetry.emit(
                "cache_hit", index=1, config="a", trace="INT1", fingerprint="f"
            )
            telemetry.emit("executor_join", executor="ex0")
            telemetry.emit(
                "lease_grant", index=1, config="a", trace="INT1",
                executor="ex0", lease_id="L1",
            )
            telemetry.emit("lease_expire", index=1, executor="ex0", lease_id="L1")
            telemetry.emit(
                "campaign_finish", done=2, failed=0, cache_hits=1, elapsed_s=0.6
            )
        events = read_events(path)
        assert [e["event"] for e in events] == [
            "campaign_start", "task_start", "task_finish", "cache_hit",
            "executor_join", "lease_grant", "lease_expire", "campaign_finish",
        ]
        assert all(isinstance(e["ts"], float) for e in events)

    def test_counters(self):
        telemetry = Telemetry()
        telemetry.emit("task_finish", index=0, config="a", trace="t",
                       elapsed_s=0.1, mpki=1.0)
        telemetry.emit("cache_hit", index=1, config="a", trace="u", fingerprint="f")
        assert telemetry.done == 2
        assert telemetry.cache_hits == 1


def small_grid(jobs: int, store_dir=None, **kwargs) -> CampaignPlan:
    return CampaignPlan(
        factories={"bimodal": Bimodal, "gshare": GShare},
        traces=[TraceSpec.suite("FP1", 400), TraceSpec.suite("INT1", 400)],
        store_dir=store_dir,
        jobs=jobs,
        **kwargs,
    )


class TestEngine:
    @needs_fork
    def test_parallel_equals_serial(self):
        serial = run_plan(small_grid(jobs=1))
        parallel = run_plan(small_grid(jobs=2))
        assert serial == parallel  # SimulationResult dataclass equality

    def test_result_ordering(self):
        results = run_plan(small_grid(jobs=1))
        assert list(results) == ["bimodal", "gshare"]
        assert [r.trace_name for r in results["bimodal"]] == ["FP1", "INT1"]

    def test_inline_traces_supported(self):
        traces = [trace_of([(4, True)] * 60, name="A")]
        results = run_plan(CampaignPlan(factories={"a": AlwaysTaken}, traces=traces))
        assert results["a"][0].mispredictions == 0

    @needs_fork
    def test_unpicklable_factory_falls_back_serial(self):
        events = []
        telemetry = Telemetry(subscribers=(events.append,))
        plan = CampaignPlan(
            factories={"lam": lambda: Bimodal()},
            traces=[TraceSpec.suite("FP1", 300)],
            jobs=2,
        )
        results = run_plan(plan, telemetry)
        assert "serial_fallback" in {e["event"] for e in events}
        assert results["lam"][0].branches >= 300

    def test_cache_hit_skips_simulation(self, tmp_path):
        run_plan(small_grid(jobs=1, store_dir=tmp_path))
        events = []
        telemetry = Telemetry(subscribers=(events.append,))
        run_plan(small_grid(jobs=1, store_dir=tmp_path), telemetry)
        kinds = [e["event"] for e in events]
        assert kinds.count("cache_hit") == 4
        assert "task_start" not in kinds

    def test_failure_raises_campaign_error(self, tmp_path):
        marker = tmp_path / "marker"
        marker.touch()
        plan = CampaignPlan(
            factories={"flaky": partial(make_flaky, str(marker))},
            traces=[TraceSpec.suite("FP1", 300)],
            max_retries=0,
        )
        with pytest.raises(CampaignError):
            run_plan(plan)

    def test_retry_then_success(self, tmp_path):
        """A transient failure consumed by the retry budget still succeeds."""
        marker = tmp_path / "marker"
        marker.touch()

        events = []

        def clear_marker_on_failure(event):
            events.append(event)
            if event["event"] == "task_failed":
                marker.unlink(missing_ok=True)

        telemetry = Telemetry(subscribers=(clear_marker_on_failure,))
        plan = CampaignPlan(
            factories={"flaky": partial(make_flaky, str(marker))},
            traces=[TraceSpec.suite("FP1", 300)],
            max_retries=1,
        )
        results = run_plan(plan, telemetry)
        kinds = [e["event"] for e in events]
        assert "task_retry" in kinds
        assert results["flaky"][0].branches >= 300


class TestManifestResume:
    def grid(self, marker: Path, store: Path) -> CampaignPlan:
        return CampaignPlan(
            factories={
                "bimodal": Bimodal,
                "flaky": partial(make_flaky, str(marker)),
            },
            traces=[TraceSpec.suite("FP1", 300), TraceSpec.suite("INT1", 300)],
            store_dir=store,
            manifest_path=store / "manifest.json",
            max_retries=0,
            allow_failures=True,
        )

    def test_resume_recomputes_only_failures(self, tmp_path):
        marker = tmp_path / "marker"
        store = tmp_path / "store"
        marker.touch()

        first = run_plan(self.grid(marker, store))
        assert all(r is not None for r in first["bimodal"])
        assert all(r is None for r in first["flaky"])
        manifest = CampaignManifest.load(store / "manifest.json")
        counts = manifest.counts()
        assert counts[STATUS_DONE] == 2 and counts[STATUS_FAILED] == 2

        # The injected fault is fixed; resume must serve the two done
        # tasks from the store and re-run only the two failed ones.
        marker.unlink()
        events = []
        telemetry = Telemetry(subscribers=(events.append,))
        second = run_plan(self.grid(marker, store), telemetry)
        kinds = [e["event"] for e in events]
        assert "manifest_resume" in kinds
        assert kinds.count("cache_hit") == 2
        started = [e for e in events if e["event"] == "task_start"]
        assert sorted(e["config"] for e in started) == ["flaky", "flaky"]
        assert all(r is not None for r in second["flaky"])
        manifest = CampaignManifest.load(store / "manifest.json")
        assert manifest.counts()[STATUS_DONE] == 4

    def test_stale_manifest_for_other_grid_discarded(self, tmp_path):
        store = tmp_path / "store"
        plan_a = CampaignPlan(
            factories={"bimodal": Bimodal},
            traces=[TraceSpec.suite("FP1", 300)],
            store_dir=store,
            manifest_path=store / "manifest.json",
        )
        run_plan(plan_a)
        id_a = CampaignManifest.load(store / "manifest.json").campaign_id
        plan_b = CampaignPlan(
            factories={"gshare": GShare},
            traces=[TraceSpec.suite("FP1", 300)],
            store_dir=store,
            manifest_path=store / "manifest.json",
        )
        run_plan(plan_b)
        manifest = CampaignManifest.load(store / "manifest.json")
        assert manifest.campaign_id != id_a
        assert manifest.counts()[STATUS_DONE] == 1


@needs_fork
class TestFaultTolerance:
    def test_timeout_restarts_worker(self):
        events = []
        telemetry = Telemetry(subscribers=(events.append,))
        plan = CampaignPlan(
            factories={"hang": HangingPredictor, "bimodal": Bimodal},
            traces=[TraceSpec.suite("FP1", 200)],
            jobs=2,
            task_timeout=1.0,
            max_retries=0,
            allow_failures=True,
        )
        results = run_plan(plan, telemetry)
        kinds = [e["event"] for e in events]
        assert "worker_restart" in kinds
        restart = next(e for e in events if e["event"] == "worker_restart")
        assert restart["reason"] == "timeout"
        assert results["hang"][0] is None
        assert results["bimodal"][0] is not None


class TestCampaignCli:
    def test_campaign_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "campaign", "FP1", "INT1",
            "--predictors", "bimodal", "gshare",
            "--branches", "400",
            "--cache-dir", str(tmp_path / "store"),
            "--telemetry", str(tmp_path / "events.jsonl"),
            "--quiet",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "bimodal" in first and "0 cached" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "4 cached" in second

        events = read_events(tmp_path / "events.jsonl")
        assert {e["event"] for e in events} >= {"campaign_start", "campaign_finish"}

    def test_campaign_default_traces_from_categories(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "campaign",
                "--categories", "SERV",
                "--predictors", "bimodal",
                "--branches", "200",
                "--cache-dir", str(tmp_path / "store"),
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "5" in out  # five SERV traces

    def test_simulate_jobs_matches_serial(self, capsys):
        from repro.cli import main

        argv = ["simulate", "FP1", "--predictors", "bimodal", "--branches", "300"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel


class TestStateStore:
    def checkpoint(self, position=100):
        predictor = Bimodal()
        trace = build_trace("FP1", 400)
        return simulate(predictor, trace, stop_after=position).checkpoint

    def test_save_load_roundtrip(self, tmp_path):
        store = StateStore(tmp_path)
        checkpoint = self.checkpoint()
        path = store.save("ctx", checkpoint)
        assert path.name.endswith("@100.state.json")
        assert store.load("ctx", 100) == checkpoint

    def test_latest_picks_highest_position(self, tmp_path):
        store = StateStore(tmp_path)
        for position in (100, 300, 200):
            store.save("ctx", self.checkpoint(position))
        assert store.latest("ctx").position == 300

    def test_latest_respects_max_position(self, tmp_path):
        store = StateStore(tmp_path)
        for position in (100, 200, 300):
            store.save("ctx", self.checkpoint(position))
        assert store.latest("ctx", max_position=200).position == 200
        assert store.latest("ctx", max_position=99) is None

    def test_context_keys_isolated(self, tmp_path):
        store = StateStore(tmp_path)
        store.save("a", self.checkpoint())
        assert store.latest("b") is None

    def test_missing_root_is_a_miss(self, tmp_path):
        assert StateStore(tmp_path / "never-created").latest("ctx") is None

    def test_corrupt_entry_purged(self, tmp_path):
        store = StateStore(tmp_path)
        path = store.save("ctx", self.checkpoint())
        path.write_text("{truncated")
        assert store.load("ctx", 100) is None
        assert not path.exists()

    def test_tampered_state_purged(self, tmp_path):
        store = StateStore(tmp_path)
        path = store.save("ctx", self.checkpoint())
        doc = json.loads(path.read_text())
        doc["predictor_state"]["payload"]["table"][0] = 3
        path.write_text(json.dumps(doc))
        assert store.load("ctx", 100) is None
        assert not path.exists()

    def test_warm_context_key_discriminates(self):
        base = warm_context_key("fp", "trace", 1000)
        assert warm_context_key("fp2", "trace", 1000) != base
        assert warm_context_key("fp", "trace2", 1000) != base
        assert warm_context_key("fp", "trace", 2000) != base


class TestCheckpointResume:
    def plan(self, factory, state: Path, manifest: Path | None = None, **kwargs):
        return CampaignPlan(
            factories={"crashy": factory},
            traces=[TraceSpec.suite("FP1", 400)],
            state_dir=state,
            checkpoint_every=100,
            manifest_path=manifest,
            **kwargs,
        )

    def test_killed_task_resumes_from_checkpoint(self, tmp_path):
        """A task that dies mid-trace resumes its retry from the last cut,
        and the resumed result is bit-identical to an uninterrupted run."""
        marker = tmp_path / "marker"
        marker.touch()
        factory = partial(make_crashy, str(marker))

        events = []
        telemetry = Telemetry(subscribers=(events.append,))
        results = run_plan(
            self.plan(
                factory,
                tmp_path / "state",
                manifest=tmp_path / "manifest.json",
                max_retries=1,
            ),
            telemetry,
        )
        kinds = [e["event"] for e in events]
        assert "task_retry" in kinds
        resume = next(e for e in events if e["event"] == "task_resume")
        assert resume["position"] == 100  # the cut before the crash at ~150

        record = next(
            iter(
                CampaignManifest.load(tmp_path / "manifest.json").records.values()
            )
        )
        assert record.status == STATUS_DONE
        assert record.resumed_from == 100
        assert record.checkpoints >= 1

        cold = run_plan(
            CampaignPlan(
                factories={"crashy": factory},
                traces=[TraceSpec.suite("FP1", 400)],
            )
        )
        assert results["crashy"][0] == cold["crashy"][0]

    def test_prepopulated_store_resumes_without_failure(self, tmp_path):
        """Checkpoints left by a killed campaign process (not just a failed
        task) are picked up on the next run of the same plan."""
        plan = self.plan(Bimodal, tmp_path / "state")
        # Simulate the first 200 branches by hand and park the cut in the
        # store under the exact fingerprint the engine will look up.
        task = build_tasks(plan)[0]
        trace = build_trace("FP1", 400)
        cut = simulate(Bimodal(), trace, stop_after=200).checkpoint
        StateStore(tmp_path / "state").save(task.fingerprint, cut)

        events = []
        telemetry = Telemetry(subscribers=(events.append,))
        results = run_plan(self.plan(Bimodal, tmp_path / "state"), telemetry)
        resume = next(e for e in events if e["event"] == "task_resume")
        assert resume["position"] == 200
        assert results["crashy"][0] == run_plan(
            CampaignPlan(factories={"b": Bimodal}, traces=[TraceSpec.suite("FP1", 400)])
        )["b"][0]

    def test_checkpoint_files_written(self, tmp_path):
        run_plan(self.plan(Bimodal, tmp_path / "state"))
        saved = sorted((tmp_path / "state").glob("*.state.json"))
        assert len(saved) >= 3  # cuts at 100/200/300 for a ~400-branch trace


class TestWarmShare:
    def pair(self, state: Path, **kwargs):
        return CampaignPlan(
            factories={"src": GShare, "variant": GShare},
            traces=[TraceSpec.suite("FP1", 500)],
            state_dir=state,
            warmup_branches=200,
            warm_share={"variant": "src"},
            **kwargs,
        )

    def test_variant_inherits_source_warm_state(self, tmp_path):
        """An identically-configured variant seeded with the source's warm
        state must reproduce the source's measured region exactly."""
        events = []
        telemetry = Telemetry(subscribers=(events.append,))
        results = run_plan(self.pair(tmp_path / "state"), telemetry)
        warm = next(e for e in events if e["event"] == "warm_restore")
        assert warm["config"] == "variant"
        assert "table" in warm["components"]
        assert results["variant"][0] == results["src"][0]

    def test_deterministic_across_cold_and_warm_store(self, tmp_path):
        first = run_plan(self.pair(tmp_path / "a"))
        # Second run against a store already holding the source state.
        prewarmed = run_plan(self.pair(tmp_path / "a"))
        cold = run_plan(self.pair(tmp_path / "b"))
        assert first == prewarmed == cold

    def test_warm_share_validation(self, tmp_path):
        with pytest.raises(ValueError, match="not in factories"):
            CampaignPlan(
                factories={"a": GShare},
                traces=[TraceSpec.suite("FP1", 100)],
                warmup_branches=50,
                warm_share={"a": "ghost"},
            )
        with pytest.raises(ValueError, match="its own source"):
            CampaignPlan(
                factories={"a": GShare},
                traces=[TraceSpec.suite("FP1", 100)],
                warmup_branches=50,
                warm_share={"a": "a"},
            )
        with pytest.raises(ValueError, match="warmup_branches"):
            CampaignPlan(
                factories={"a": GShare, "b": GShare},
                traces=[TraceSpec.suite("FP1", 100)],
                warm_share={"b": "a"},
            )
