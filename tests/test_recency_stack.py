"""Tests for the recency stack (paper Figure 3) and positional history."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recency_stack import RecencyStack


class TestBasicBehaviour:
    def test_starts_empty(self):
        assert len(RecencyStack(depth=4)) == 0

    def test_record_inserts_at_top(self):
        rs = RecencyStack(depth=4)
        rs.record(0x10, True)
        rs.tick()
        rs.record(0x20, False)
        entries = rs.entries()
        assert entries[0].address == 0x20
        assert entries[1].address == 0x10

    def test_hit_moves_to_top_and_updates(self):
        rs = RecencyStack(depth=4)
        for pc in (0x10, 0x20, 0x30):
            rs.record(pc, True)
            rs.tick()
        rs.record(0x10, False)
        entries = rs.entries()
        assert [e.address for e in entries] == [0x10, 0x30, 0x20]
        assert entries[0].outcome is False
        assert len(rs) == 3  # dedup: no growth

    def test_capacity_evicts_oldest(self):
        rs = RecencyStack(depth=3)
        for pc in (0x10, 0x20, 0x30, 0x40):
            rs.record(pc, True)
            rs.tick()
        assert [e.address for e in rs.entries()] == [0x40, 0x30, 0x20]

    def test_find(self):
        rs = RecencyStack(depth=4)
        rs.record(0x10, True)
        assert rs.find(0x10) is not None
        assert rs.find(0x999) is None

    def test_clear(self):
        rs = RecencyStack(depth=4)
        rs.record(0x10, True)
        rs.clear()
        assert len(rs) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RecencyStack(depth=0)
        with pytest.raises(ValueError):
            RecencyStack(depth=4, position_cap=0)


class TestPositionalHistory:
    def test_distance_counts_committed_branches(self):
        rs = RecencyStack(depth=4)
        rs.record(0x10, True)
        for _ in range(5):
            rs.tick()
        entry = rs.find(0x10)
        assert rs.distance_of(entry) == 5

    def test_distance_resets_on_reoccurrence(self):
        rs = RecencyStack(depth=4)
        rs.record(0x10, True)
        for _ in range(5):
            rs.tick()
        rs.record(0x10, True)
        assert rs.distance_of(rs.find(0x10)) == 0

    def test_distance_caps(self):
        rs = RecencyStack(depth=4, position_cap=10)
        rs.record(0x10, True)
        for _ in range(100):
            rs.tick()
        assert rs.distance_of(rs.find(0x10)) == 10

    def test_aph_view_matches_entries(self):
        rs = RecencyStack(depth=4)
        rs.record(0x10, True)
        rs.tick()
        rs.record(0x20, False)
        snap = rs.aph_view()
        assert snap[0] == (0x20, 0, False)
        assert snap[1] == (0x10, 1, True)

    def test_snapshot_restore_roundtrip(self):
        rs = RecencyStack(depth=4, position_cap=10)
        for pc in (0x10, 0x20, 0x30):
            rs.record(pc, pc == 0x20)
            rs.tick()
        other = RecencyStack(depth=4, position_cap=10)
        other.restore(rs.snapshot())
        assert other.aph_view() == rs.aph_view()
        assert other.snapshot() == rs.snapshot()


class TestDedupFlag:
    def test_no_dedup_keeps_instances(self):
        rs = RecencyStack(depth=8, dedup=False)
        for _ in range(3):
            rs.record(0x10, True)
            rs.tick()
        assert len(rs) == 3

    def test_no_dedup_acts_as_shift_register(self):
        rs = RecencyStack(depth=2, dedup=False)
        rs.record(0x10, True)
        rs.record(0x20, True)
        rs.record(0x10, False)
        assert [e.address for e in rs.entries()] == [0x10, 0x20]


class TestInvariants:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=15), st.booleans()),
            max_size=300,
        ),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50)
    def test_dedup_invariants(self, events, depth):
        """With dedup: addresses unique, size bounded, order = recency."""
        rs = RecencyStack(depth=depth)
        last_seen = {}
        clock = 0
        for pc, taken in events:
            rs.record(pc, taken)
            last_seen[pc] = (clock, taken)
            rs.tick()
            clock += 1
            entries = rs.entries()
            addresses = [e.address for e in entries]
            assert len(addresses) == len(set(addresses))
            assert len(entries) <= depth
            stamps = [e.stamp for e in entries]
            assert stamps == sorted(stamps, reverse=True)
        # Every entry reflects the branch's most recent occurrence.
        for entry in rs.entries():
            stamp, outcome = last_seen[entry.address]
            assert entry.stamp == stamp
            assert entry.outcome == outcome

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=1000), st.booleans()),
            max_size=200,
        )
    )
    @settings(max_examples=30)
    def test_top_entry_is_most_recent(self, events):
        rs = RecencyStack(depth=16)
        for pc, taken in events:
            rs.record(pc, taken)
            rs.tick()
        if events:
            assert rs.entries()[0].address == events[-1][0]
