"""Golden-fingerprint regression pins for every named workload.

Every trace in the calibrated 40-trace suite, the adversarial wild set
and the sparse long-range set is a *pure function of its name* — that
determinism is what lets `TraceSpec.suite` recipes travel to workers,
lets the serving pool and loadgen regenerate identical streams on both
ends of a socket, and lets suite manifests pin entries by content
fingerprint.  This module pins the content fingerprint and metadata of
each named trace (at a fixed small budget) so *any* generator drift —
an edited scene, a reweighted mix, an RNG change — fails loudly here
instead of silently invalidating caches and manifests everywhere.

If a change to the generators is intentional, regenerate the pins:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_workload_golden.py -q

and commit the updated ``tests/fixtures/golden_fingerprints.json``
alongside the generator change (call out the drift in the PR: every
downstream fingerprint pin — campaign caches, suite manifests — breaks
with it).
"""

import json
import os
from pathlib import Path

import pytest

from repro.orchestration.fingerprint import trace_content_fingerprint
from repro.workloads import build_trace, workload_names

GOLDEN_PATH = Path(__file__).parent / "fixtures" / "golden_fingerprints.json"

#: Budget the pins are computed at: small enough to keep the full
#: 48-trace sweep cheap, large enough to exercise every scene type.
GOLDEN_BRANCHES = 2000

pytestmark = pytest.mark.workloads


def _observe(name: str) -> dict:
    trace = build_trace(name, GOLDEN_BRANCHES)
    return {
        "fingerprint": trace_content_fingerprint(trace),
        "branches": len(trace),
        "category": trace.metadata.category,
        "instruction_count": trace.metadata.instruction_count,
        "seed": trace.metadata.seed,
    }


def _regenerate() -> dict:
    golden = {name: _observe(name) for name in workload_names()}
    GOLDEN_PATH.write_text(
        json.dumps(golden, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return golden


@pytest.fixture(scope="module")
def golden() -> dict:
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        return _regenerate()
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} is missing; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def test_every_workload_is_pinned(golden):
    assert sorted(golden) == sorted(workload_names()), (
        "the golden file and the workload registry disagree about which "
        "named traces exist; regenerate with REPRO_REGEN_GOLDEN=1 and "
        "review the diff"
    )


@pytest.mark.parametrize("name", sorted(set(json.loads(
    GOLDEN_PATH.read_text(encoding="utf-8")) if GOLDEN_PATH.exists() else {})))
def test_workload_matches_golden(golden, name):
    observed = _observe(name)
    expected = golden[name]
    assert observed == expected, (
        f"generator drift for {name!r}:\n"
        f"  expected {expected}\n"
        f"  observed {observed}\n"
        "Every content fingerprint pinned downstream (campaign caches, "
        "suite manifests) breaks with this. If the change is intentional, "
        "regenerate the pins with REPRO_REGEN_GOLDEN=1 and commit the "
        "updated golden_fingerprints.json."
    )
