"""Cross-module integration tests: the paper's qualitative claims, small.

These run whole predictor/workload/simulator stacks on reduced traces
and assert the *orderings* the paper reports, not absolute numbers.
"""

import pytest

from repro.core import BFTage, BFTageConfig, bf_neural_64kb
from repro.core.bfneural import BFNeural, BFNeuralConfig
from repro.experiments.common import bf_neural_stage
from repro.predictors import ScaledNeural, Tage, TageConfig
from repro.sim import simulate
from repro.workloads import build_trace

TRACE_BRANCHES = 25_000


@pytest.fixture(scope="module")
def rs_trace():
    """SPEC03: low bias, heavy recency-stack content."""
    return build_trace("SPEC03", TRACE_BRANCHES)


@pytest.fixture(scope="module")
def bias_trace():
    """SPEC02: heavy biased padding + deep correlations."""
    return build_trace("SPEC02", TRACE_BRANCHES)


class TestHeadlineOrderings:
    def test_bf_neural_beats_oh_snap(self, bias_trace, rs_trace):
        """Figure 8's main claim."""
        for trace in (bias_trace, rs_trace):
            snap = simulate(ScaledNeural(), trace)
            bf = simulate(bf_neural_64kb(), trace)
            assert bf.mpki < snap.mpki

    def test_bf_neural_comparable_to_tage(self, bias_trace):
        """Figure 8: BF-Neural within striking distance of TAGE."""
        tage = simulate(Tage(TageConfig.for_tables(10)), bias_trace)
        bf = simulate(bf_neural_64kb(), bias_trace)
        assert bf.mpki < tage.mpki * 1.25

    def test_ablation_stages_ordered(self, rs_trace):
        """Figure 9: each optimization must not hurt, RS helps SPEC03."""
        baseline = simulate(ScaledNeural(history_length=72), rs_trace).mpki
        stage1 = simulate(bf_neural_stage(1), rs_trace).mpki
        stage3 = simulate(bf_neural_stage(3), rs_trace).mpki
        assert stage1 < baseline
        assert stage3 < stage1 * 1.05  # allow noise, but no regression

    def test_rs_stage_beats_no_rs_on_rs_trace(self, rs_trace):
        """SPEC03 is tuned so RS management is the valuable step."""
        stage2 = simulate(bf_neural_stage(2), rs_trace).mpki
        stage3 = simulate(bf_neural_stage(3), rs_trace).mpki
        assert stage3 < stage2


class TestBFTageClaims:
    def test_bf_tage_4_tables_matches_deeper_conventional(self, bias_trace):
        """Section V: compressed history gives few-table BF-TAGE the
        reach of a many-table conventional TAGE."""
        bf4 = simulate(BFTage(BFTageConfig.for_tables(4)), bias_trace).mpki
        t4 = simulate(Tage(TageConfig.for_tables(4)), bias_trace).mpki
        assert bf4 < t4 * 1.02

    def test_bf_tage10_close_to_tage15(self, bias_trace):
        """Figure 11: BF-TAGE-10 tracks TAGE-15."""
        bf10 = simulate(BFTage(BFTageConfig.for_tables(10)), bias_trace).mpki
        t15 = simulate(Tage(TageConfig.for_tables(15)), bias_trace).mpki
        assert bf10 < t15 * 1.15


class TestHitDistributionShift:
    def test_bf_tage_shifts_hits_to_shorter_tables(self, bias_trace):
        """Figure 12's mechanism at small scale."""

        def mean_provider(predictor, tables):
            result = simulate(predictor, bias_trace, track_providers=True)
            weights = [
                result.provider_hits.get(f"T{i}", 0) for i in range(1, tables + 1)
            ]
            total = sum(weights)
            return sum((i + 1) * w for i, w in enumerate(weights)) / total

        tage_mean = mean_provider(Tage(TageConfig.for_tables(15)), 15)
        bf_mean = mean_provider(BFTage(BFTageConfig.for_tables(10)), 10)
        assert bf_mean < tage_mean


class TestServPathology:
    def test_dynamic_detection_hurts_serv(self):
        """Section VI-D: SERV traces suffer from bias-free filtering
        because phase-changing branches pollute the filtered history."""
        trace = build_trace("SERV3", TRACE_BRANCHES)
        stage1 = simulate(bf_neural_stage(1), trace).mpki  # unfiltered history
        stage2 = simulate(bf_neural_stage(2), trace).mpki  # filtered history
        assert stage2 > stage1 * 0.97  # filtering must NOT give the usual win


class TestDeterminism:
    def test_full_stack_deterministic(self):
        trace1 = build_trace("MM2", 8000)
        trace2 = build_trace("MM2", 8000)
        r1 = simulate(bf_neural_64kb(), trace1)
        r2 = simulate(bf_neural_64kb(), trace2)
        assert r1.mispredictions == r2.mispredictions

    def test_probabilistic_bst_is_seeded(self):
        config = BFNeuralConfig(probabilistic_bst=True)
        trace = build_trace("FP2", 5000)
        r1 = simulate(BFNeural(config), trace)
        r2 = simulate(BFNeural(BFNeuralConfig(probabilistic_bst=True)), trace)
        assert r1.mispredictions == r2.mispredictions
