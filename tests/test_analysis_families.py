"""Tier-1 tests for the det/race/schema rule families and CLI plumbing."""

import json
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    ALL_RULES,
    FAMILIES,
    Finding,
    family_of,
    lint_paths,
    lint_source,
    lint_sources,
)
from repro.analysis.baseline import Baseline, BaselineEntry, write_baseline
from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, JSON_KEYS, _jsonl_line, main
from repro.analysis.rules import collect_sources

ROOT = Path(__file__).resolve().parent.parent
FIXTURES = ROOT / "tests" / "fixtures" / "analysis"
SRC = ROOT / "src"

TAINT = FIXTURES / "violation_taint.py"
RACE = FIXTURES / "violation_race.py"
SCHEMA = FIXTURES / "violation_schema.py"
PERF = FIXTURES / "violation_perf.py"
CONC = FIXTURES / "violation_concurrency.py"


def rules_of(path, family):
    return [f.rule for f in lint_paths([path], families=[family])]


class TestFamilyRegistry:
    def test_every_rule_maps_to_a_family(self):
        for rule in ALL_RULES:
            family = family_of(rule)
            assert family in FAMILIES
            assert rule in FAMILIES[family][1]

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="unknown analysis family"):
            lint_source("x = 1\n", families=["nope"])

    def test_family_selection_restricts_rules(self):
        assert all(r.startswith("REPRO1") for r in rules_of(TAINT, "det"))
        assert all(r.startswith("REPRO0") for r in rules_of(TAINT, "hw"))


class TestDeterminismTaint:
    def test_fixture_positives(self):
        findings = lint_paths([TAINT], families=["det"])
        by_symbol = {f.symbol: f.rule for f in findings}
        assert by_symbol == {
            "cache_key_from_clock": "REPRO101",
            "digest_environment": "REPRO101",
            "unsorted_set_key": "REPRO103",
            "key_via_helper": "REPRO101",
            "_state_payload": "REPRO102",
        }

    def test_sorted_and_allowlisted_sinks_are_clean(self):
        findings = lint_paths([TAINT], families=["det"])
        assert not {f.symbol for f in findings} & {
            "sorted_set_key",
            "report",
            "helper_clock",
        }

    def test_taint_through_helper_return(self):
        # The interprocedural pass: helper_clock() returns wall-clock
        # taint which must reach the sha256 sink in its caller.
        findings = lint_paths([TAINT], families=["det"])
        flagged = [f for f in findings if f.symbol == "key_via_helper"]
        assert [f.rule for f in flagged] == ["REPRO101"]

    def test_clock_into_fingerprint(self):
        code = (
            "import time\n"
            "from repro.orchestration.fingerprint import task_fingerprint\n"
            "def key():\n"
            "    stamp = time.monotonic()\n"
            "    return task_fingerprint(stamp)\n"
        )
        assert [f.rule for f in lint_source(code, families=["det"])] == ["REPRO101"]

    def test_telemetry_emit_is_allowlisted(self):
        code = (
            "import time\n"
            "def report(telemetry):\n"
            "    telemetry.emit('progress', ts=time.time())\n"
        )
        assert lint_source(code, families=["det"]) == []

    def test_sort_keys_dumps_launders_order(self):
        code = (
            "import hashlib, json\n"
            "def key(parts):\n"
            "    blob = json.dumps(dict(parts), sort_keys=True)\n"
            "    return hashlib.sha256(blob.encode()).hexdigest()\n"
        )
        assert lint_source(code, families=["det"]) == []

    def test_dict_iteration_order_flagged(self):
        code = (
            "import hashlib\n"
            "def key(mapping):\n"
            "    mapping = dict(mapping)\n"
            "    blob = ','.join(k for k in mapping.keys())\n"
            "    return hashlib.sha256(blob.encode()).hexdigest()\n"
        )
        assert [f.rule for f in lint_source(code, families=["det"])] == ["REPRO103"]

    def test_state_ctor_sink(self):
        code = (
            "import os\n"
            "from repro.orchestration.statestore import PredictorState\n"
            "def snap():\n"
            "    return PredictorState(payload={'pid': os.getpid()})\n"
        )
        assert [f.rule for f in lint_source(code, families=["det"])] == ["REPRO102"]


class TestRaceDetector:
    def test_fixture_positives(self):
        findings = lint_paths([RACE], families=["race"])
        got = {(f.symbol, f.rule) for f in findings}
        assert got == {
            ("LeakyCoordinator.outstanding", "REPRO201"),
            ("LeakyCoordinator.drop_all", "REPRO201"),
            ("LeakyCoordinator._expire_loop", "REPRO202"),
        }

    def test_lockless_class_and_guarded_reads_are_clean(self):
        findings = lint_paths([RACE], families=["race"])
        symbols = {f.symbol for f in findings}
        assert not any(s.startswith("Unlocked.") for s in symbols)
        assert "LeakyCoordinator.settled_view" not in symbols

    def test_injected_unguarded_lease_write_is_caught(self):
        # The acceptance scenario: someone adds a public method to the
        # real coordinator that clears the lease table without the lock.
        path = SRC / "repro" / "orchestration" / "distserver.py"
        original = path.read_text()
        anchor = "    def serve(self)"
        assert anchor in original
        injected = original.replace(
            anchor,
            "    def leak_leases(self):\n"
            "        self._leases.clear()\n"
            "\n" + anchor,
            1,
        )
        findings = lint_source(injected, str(path), families=["race"])
        assert [(f.rule, f.symbol) for f in findings] == [
            ("REPRO201", "Coordinator.leak_leases")
        ]

    def test_private_helper_without_lock_is_presumed_guarded(self):
        code = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []\n"
            "    def push(self, item):\n"
            "        with self._lock:\n"
            "            self._append(item)\n"
            "    def _append(self, item):\n"
            "        self._items.append(item)\n"
        )
        assert lint_source(code, families=["race"]) == []


class TestSchemaDrift:
    def test_fixture_positives(self):
        findings = lint_paths([SCHEMA], families=["schema"])
        got = {(f.symbol, f.rule) for f in findings}
        assert got == {
            ("emit_unknown", "REPRO301"),
            ("emit_incomplete", "REPRO302"),
            ("hijack", "REPRO303"),
            ("greet_incomplete", "REPRO304"),
            ("entry_unknown", "REPRO305"),
            ("entry_incomplete", "REPRO306"),
        }

    def test_negatives_are_clean(self):
        symbols = {f.symbol for f in lint_paths([SCHEMA], families=["schema"])}
        assert not symbols & {
            "emit_known", "emit_forwarded", "greet", "merge_ok",
            "entry_ok", "entry_merged",
        }

    def test_manifest_entry_drift_against_real_declaration(self):
        # The acceptance scenario for REPRO305/306: code in a manifest
        # module builds an entry dict the real MANIFEST_TYPES never
        # declared (or misses a required key of a declared kind).
        manifest = SRC / "repro" / "workloads" / "manifest.py"
        sources = collect_sources([manifest])
        rogue = (
            "from repro.workloads.manifest import parse_manifest\n"
            "def forge():\n"
            "    bad = {'kind': 'hologram', 'name': 'H'}\n"
            "    sparse = {'kind': 'generator', 'name': 'G'}\n"
            "    return bad, sparse\n"
        )
        findings = lint_sources(
            sources + collect_sources_from_text(rogue, "rogue.py"),
            families=["schema"],
        )
        assert [f.rule for f in findings] == ["REPRO305", "REPRO306"]
        assert "hologram" in findings[0].message
        assert "family" in findings[1].message

    def test_injected_unregistered_event_is_caught(self):
        # The acceptance scenario: code emits an event kind that was
        # never registered in the real telemetry schema.
        telemetry = SRC / "repro" / "orchestration" / "telemetry.py"
        sources = collect_sources([telemetry])
        rogue = (
            "def announce(telemetry):\n"
            "    telemetry.emit('campaign_teleport', where='away')\n"
        )
        findings = lint_sources(
            sources + collect_sources_from_text(rogue, "rogue.py"),
            families=["schema"],
        )
        assert [f.rule for f in findings] == ["REPRO301"]
        assert "campaign_teleport" in findings[0].message

    def test_injected_missing_field_is_caught(self):
        telemetry = SRC / "repro" / "orchestration" / "telemetry.py"
        sources = collect_sources([telemetry])
        rogue = (
            "def announce(telemetry):\n"
            "    telemetry.emit('task_retry', index=3)\n"  # misses 'attempt'
        )
        findings = lint_sources(
            sources + collect_sources_from_text(rogue, "rogue.py"),
            families=["schema"],
        )
        assert [f.rule for f in findings] == ["REPRO302"]
        assert "attempt" in findings[0].message

    def test_no_declaration_means_no_findings(self):
        code = "def f(telemetry):\n    telemetry.emit('anything', x=1)\n"
        assert lint_source(code, families=["schema"]) == []


def collect_sources_from_text(text, filename):
    """Build a one-module source list from in-memory text."""
    import ast

    from repro.analysis.findings import canonical_file
    from repro.analysis.rules import ModuleSource, module_name_for

    return [
        ModuleSource(
            path=Path(filename),
            module=module_name_for(Path(filename)),
            relpath=canonical_file(filename),
            tree=ast.parse(text, filename=filename),
        )
    ]


class TestPerfFamily:
    def test_fixture_positives(self):
        findings = lint_paths([PERF], families=["perf"])
        got = {(f.symbol, f.rule) for f in findings}
        assert got == {
            ("WastefulPredictor.predict", "REPRO401"),
            ("WastefulPredictor._helper", "REPRO402"),
            ("WastefulPredictor._helper", "REPRO403"),
            ("WastefulPredictor.train", "REPRO404"),
            ("WastefulPredictor.train", "REPRO405"),
            ("WastefulPredictor._log", "REPRO406"),
            ("hot_marked_packing", "REPRO401"),
            ("ArrayLoopPredictor.predict", "REPRO407"),
            ("hot_numpy_loop", "REPRO407"),
        }
        # Three variants fire inside hot_numpy_loop: the direct array
        # loop, range(len(arr)), and the enumerate() forwarding.
        assert sum(f.rule == "REPRO407" for f in findings) == 4

    def test_interprocedural_chain_in_message(self):
        # Helpers are flagged because a hot root reaches them; the
        # message names the chain.
        findings = lint_paths([PERF], families=["perf"])
        helper = next(f for f in findings if f.symbol == "WastefulPredictor._helper")
        assert "WastefulPredictor.predict -> WastefulPredictor._helper" in helper.message
        log = next(f for f in findings if f.symbol == "WastefulPredictor._log")
        assert "WastefulPredictor.train -> WastefulPredictor._log" in log.message

    def test_cold_paths_and_pragma_are_clean(self):
        symbols = {f.symbol for f in lint_paths([PERF], families=["perf"])}
        assert not symbols & {
            "WastefulPredictor.update",  # pragma-waived
            "WastefulPredictor.reset",  # cold method
            "WastefulPredictor._cold_tail",  # only reachable from cold code
            "hot_marked_sum",  # hot but allocation-free
            "cold_setup",  # unmarked free function
            "ArrayLoopPredictor.train",  # .tolist() escapes numpy-land
            "hot_numpy_waived",  # pragma-waived sequential recurrence
            "cold_numpy_loop",  # numpy loop outside the closure
        }

    def test_pragma_requires_reason(self):
        code = (
            "from repro.predictors.base import hot_path\n"
            "@hot_path\n"
            "def f(values):\n"
            "    # perf: allow(REPRO401):\n"
            "    return [v for v in values]\n"
        )
        assert [f.rule for f in lint_source(code, families=["perf"])] == ["REPRO401"]

    def test_hot_path_marker_pulls_in_free_function(self):
        code = (
            "from repro.predictors.base import hot_path\n"
            "def helper(values):\n"
            "    return {v: v for v in values}\n"
            "@hot_path\n"
            "def entry(values):\n"
            "    return helper(values)\n"
        )
        findings = lint_source(code, families=["perf"])
        assert [(f.rule, f.symbol) for f in findings] == [("REPRO401", "helper")]


class TestConcurrencyFamily:
    def test_fixture_positives(self):
        findings = lint_paths([CONC], families=["concurrency"])
        got = {(f.symbol, f.rule) for f in findings}
        assert got == {
            ("AbbaDeadlock.forward", "REPRO501"),
            ("BlockingUnderLock.pump", "REPRO502"),
            ("BlockingUnderLock.relay", "REPRO502"),
            ("ThreadEscape.spawn", "REPRO503"),
            ("ThreadEscape.spawn_closure", "REPRO503"),
            ("NestedLock.add", "REPRO504"),
            ("CallbackUnderLock.record", "REPRO505"),
            ("CallbackUnderLock.publish", "REPRO505"),
            ("bad_handshake", "REPRO506"),
        }

    def test_abba_cycle_reports_both_edges_with_via_chain(self):
        # One finding per cycle: both edges described, and the edge that
        # runs through a helper names its interprocedural chain.
        findings = lint_paths([CONC], families=["concurrency"])
        cycle = next(f for f in findings if f.rule == "REPRO501")
        assert "AbbaDeadlock.alpha -> violation_concurrency.AbbaDeadlock.beta" in (
            cycle.message
        )
        assert "AbbaDeadlock.beta -> violation_concurrency.AbbaDeadlock.alpha" in (
            cycle.message
        )
        assert "[via AbbaDeadlock._touch]" in cycle.message

    def test_interprocedural_blocking_chain_in_message(self):
        findings = lint_paths([CONC], families=["concurrency"])
        relay = next(f for f in findings if f.symbol == "BlockingUnderLock.relay")
        assert "[via send_message]" in relay.message

    def test_clean_counterparts_are_silent(self):
        symbols = {f.symbol for f in lint_paths([CONC], families=["concurrency"])}
        assert not symbols & {
            "Disciplined.enqueue",
            "Disciplined.flush",
            "good_handshake",
            "Waived.flush",  # pragma-waived
            "ThreadEscape.bump",  # guarded write, not an escape
            "CallbackUnderLock.subscribe",
            "NestedLock._flush",  # single acquisition on its own
        }

    def test_pragma_requires_reason(self):
        code = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self, sock):\n"
            "        self.sock = sock\n"
            "        self._lock = threading.Lock()\n"
            "    def flush(self, payload):\n"
            "        with self._lock:\n"
            "            # concurrency: allow(REPRO502):\n"
            "            self.sock.sendall(payload)\n"
        )
        findings = lint_source(code, families=["concurrency"])
        assert [f.rule for f in findings] == ["REPRO502"]

    def test_injected_out_of_order_handler_is_caught(self):
        # The acceptance scenario: a new client helper in the real
        # protocol module sends `events` straight after the hello,
        # skipping session_open — the declared serving FSM refuses it.
        path = SRC / "repro" / "orchestration" / "remote.py"
        original = path.read_text()
        injected = original + (
            "\n\n"
            "def eager_stream(sock, batch):\n"
            '    send_message(sock, {"type": "serve_hello", "token": None})\n'
            '    send_message(sock, {"type": "events", "events": batch})\n'
        )
        findings = lint_source(injected, str(path), families=["concurrency"])
        # Connection.request's baselined REPRO502s also surface here
        # (lint_source applies no baseline); the FSM check is the point.
        assert [(f.rule, f.symbol) for f in findings if f.rule == "REPRO506"] == [
            ("REPRO506", "eager_stream")
        ]

    def test_ordered_handler_is_clean(self):
        path = SRC / "repro" / "orchestration" / "remote.py"
        injected = path.read_text() + (
            "\n\n"
            "def patient_stream(sock, batch):\n"
            '    send_message(sock, {"type": "serve_hello", "token": None})\n'
            '    send_message(sock, {"type": "session_open", "config": "a"})\n'
            '    send_message(sock, {"type": "events", "events": batch})\n'
        )
        findings = lint_source(injected, str(path), families=["concurrency"])
        assert [f for f in findings if f.rule == "REPRO506"] == []


class TestRealTreeIsClean:
    def test_det_family_clean_on_src(self):
        assert lint_paths([SRC], families=["det"]) == []

    def test_race_family_clean_on_src(self):
        assert lint_paths([SRC], families=["race"]) == []

    def test_schema_family_clean_on_src(self):
        assert lint_paths([SRC], families=["schema"]) == []

    def test_perf_family_clean_on_src(self):
        # Hot-loop true positives were fixed or pragma-justified in
        # place; the batch kernels' two deliberately sequential replay
        # loops (REPRO407) carry justified baseline entries instead.
        # The gate in run_all_experiments.sh keeps it that way.
        from repro.analysis.baseline import load_baseline

        findings = lint_paths([SRC], families=["perf"])
        new, suppressed, stale = load_baseline().split(findings, families=["perf"])
        assert new == []
        assert stale == []
        assert {(f.rule, f.symbol) for f in suppressed} == {
            ("REPRO407", "_PerceptronKernel.run"),
            ("REPRO407", "BFNeuralKernel.run"),
        }

    def test_concurrency_family_clean_on_src(self):
        # The lock-discipline true positives were refactored away
        # (telemetry/pool/distserver hoist blocking work out of their
        # critical sections); what remains are the four deliberate
        # request-serialization / sink-I/O patterns, each carried as a
        # justified baseline entry.
        from repro.analysis.baseline import load_baseline

        findings = lint_paths([SRC], families=["concurrency"])
        new, suppressed, stale = load_baseline().split(
            findings, families=["concurrency"]
        )
        assert new == []
        assert stale == []
        assert {(f.rule, f.symbol) for f in suppressed} == {
            ("REPRO502", "Connection.request"),
            ("REPRO502", "PredictClient._request"),
            ("REPRO502", "Telemetry.emit"),
            ("REPRO502", "Coordinator._persist"),
        }


class TestCliFamilies:
    def test_family_flag_restricts(self, capsys):
        code = main([str(TAINT), "--no-audit", "--no-baseline", "--family", "det"])
        assert code == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "REPRO101" in out and "REPRO004" not in out

    def test_family_flag_hw_only(self, capsys):
        code = main([str(TAINT), "--no-audit", "--no-baseline", "--family", "hw"])
        assert code == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "REPRO004" in out and "REPRO101" not in out

    def test_list_rules_covers_all_families(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule in ("REPRO001", "REPRO101", "REPRO201", "REPRO301", "REPRO401"):
            assert rule in out

    def test_each_family_fails_on_its_fixture(self):
        for family, fixture in (
            ("det", TAINT),
            ("race", RACE),
            ("schema", SCHEMA),
            ("perf", PERF),
            ("concurrency", CONC),
        ):
            code = main(
                [str(fixture), "--no-audit", "--no-baseline", "--family", family]
            )
            assert code == EXIT_FINDINGS, family


class TestJsonLines:
    def run_jsonl(self, capsys, *argv):
        code = main([*argv, "--no-audit", "--format", "json"])
        return code, capsys.readouterr().out

    def test_one_finding_per_line_stable_keys(self, capsys):
        code, out = self.run_jsonl(
            capsys, str(TAINT), "--no-baseline", "--family", "det"
        )
        assert code == EXIT_FINDINGS
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == 5
        for line in lines:
            record = json.loads(line)
            assert list(record) == list(JSON_KEYS)
            assert record["status"] == "new"
            assert record["family"] == "det"

    def test_output_is_deterministic(self, capsys):
        _, first = self.run_jsonl(capsys, str(RACE), "--no-baseline")
        _, second = self.run_jsonl(capsys, str(RACE), "--no-baseline")
        assert first == second

    def test_stale_entries_reported(self, capsys, tmp_path):
        baseline = tmp_path / "b.json"
        write_baseline(
            baseline,
            [Finding(rule="REPRO201", file="gone.py", line=1, symbol="X.y", message="m")],
            Baseline(entries=[]),
        )
        code, out = self.run_jsonl(
            capsys, str(FIXTURES / "clean.py"), "--baseline", str(baseline)
        )
        assert code == EXIT_CLEAN
        records = [json.loads(line) for line in out.splitlines() if line.strip()]
        assert [r["status"] for r in records] == ["stale"]


class TestJsonRoundTrip:
    text = st.text(
        st.characters(blacklist_categories=("Cs",)), min_size=0, max_size=40
    )

    @given(
        rule=st.sampled_from(sorted(ALL_RULES)),
        file=text,
        line=st.integers(min_value=0, max_value=10**6),
        symbol=text,
        message=text,
        hint=text,
    )
    def test_jsonl_line_round_trips(self, rule, file, line, symbol, message, hint):
        finding = Finding(
            rule=rule, file=file, line=line, symbol=symbol, message=message, hint=hint
        )
        record = json.loads(_jsonl_line("new", finding))
        assert list(record) == list(JSON_KEYS)
        assert record["status"] == "new"
        assert record["family"] == family_of(rule)
        rebuilt = Finding(
            rule=record["rule"],
            file=record["file"],
            line=record["line"],
            symbol=record["symbol"],
            message=record["message"],
            hint=record["hint"],
        )
        assert rebuilt == finding


class TestBaselineHygiene:
    def test_update_baseline_is_sorted_and_byte_stable(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"version": 1, "entries": []}\n')
        argv = [
            str(RACE),
            "--no-audit",
            "--baseline",
            str(baseline),
            "--update-baseline",
        ]
        assert main(argv) == EXIT_CLEAN
        first = baseline.read_bytes()
        assert main(argv) == EXIT_CLEAN
        assert baseline.read_bytes() == first
        entries = json.loads(first)["entries"]
        keys = [(e["rule"], e["file"], e["symbol"]) for e in entries]
        assert keys == sorted(keys)
        assert len(entries) == 3

    def test_update_baseline_keeps_justifications(self, tmp_path):
        findings = lint_paths([RACE], families=["race"])
        baseline_path = tmp_path / "b.json"
        previous = Baseline(
            entries=[
                BaselineEntry(
                    rule=findings[0].rule,
                    file=findings[0].file,
                    symbol=findings[0].symbol,
                    justification="intentional, see docs",
                )
            ]
        )
        write_baseline(baseline_path, findings, previous)
        entries = json.loads(baseline_path.read_text())["entries"]
        by_key = {(e["rule"], e["symbol"]): e["justification"] for e in entries}
        assert by_key[(findings[0].rule, findings[0].symbol)] == "intentional, see docs"

    def test_fail_on_stale(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        write_baseline(
            baseline,
            [Finding(rule="REPRO101", file="gone.py", line=1, symbol="f", message="m")],
            Baseline(entries=[]),
        )
        argv = [str(FIXTURES / "clean.py"), "--no-audit", "--baseline", str(baseline)]
        assert main(argv) == EXIT_CLEAN
        assert main([*argv, "--fail-on-stale"]) == EXIT_FINDINGS

    def test_staleness_scoped_to_families_that_ran(self, tmp_path, capsys):
        # A det baseline entry cannot be judged stale by a perf-only run:
        # its rule never executed, so it matched nothing by construction.
        baseline = tmp_path / "b.json"
        write_baseline(
            baseline,
            [Finding(rule="REPRO101", file="gone.py", line=1, symbol="f", message="m")],
            Baseline(entries=[]),
        )
        argv = [
            str(FIXTURES / "clean.py"),
            "--no-audit",
            "--baseline",
            str(baseline),
            "--fail-on-stale",
        ]
        assert main([*argv, "--family", "perf"]) == EXIT_CLEAN
        assert main([*argv, "--family", "det"]) == EXIT_FINDINGS

    def test_repro5xx_staleness_scoped_to_concurrency_runs(self, tmp_path, capsys):
        # Regression: family_of used to misfile REPRO5xx as "hw", so a
        # concurrency-only run could never retire its own entries and an
        # hw-only run wrongly marked them stale.
        baseline = tmp_path / "b.json"
        write_baseline(
            baseline,
            [
                Finding(
                    rule="REPRO502", file="gone.py", line=1, symbol="f", message="m"
                )
            ],
            Baseline(entries=[]),
        )
        argv = [
            str(FIXTURES / "clean.py"),
            "--no-audit",
            "--baseline",
            str(baseline),
            "--fail-on-stale",
        ]
        assert main([*argv, "--family", "hw"]) == EXIT_CLEAN
        assert main([*argv, "--family", "concurrency"]) == EXIT_FINDINGS

    def test_split_keeps_unrun_family_entries_out_of_stale(self):
        # Direct Baseline.split check for both directions of the scoping.
        entries = [
            BaselineEntry(rule="REPRO201", file="a.py", symbol="f", justification="j"),
            BaselineEntry(rule="REPRO502", file="a.py", symbol="g", justification="j"),
        ]
        baseline = Baseline(entries=entries)
        new, suppressed, stale = baseline.split([], families=["concurrency"])
        assert [e.rule for e in stale] == ["REPRO502"]
        new, suppressed, stale = baseline.split([], families=["race"])
        assert [e.rule for e in stale] == ["REPRO201"]


class TestSarifFormat:
    def run_sarif(self, capsys, *argv):
        code = main([*argv, "--no-audit", "--format", "sarif"])
        return code, json.loads(capsys.readouterr().out)

    def test_structure_and_rules(self, capsys):
        code, payload = self.run_sarif(
            capsys, str(PERF), "--no-baseline", "--family", "perf"
        )
        assert code == EXIT_FINDINGS
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        result_rules = {result["ruleId"] for result in run["results"]}
        assert result_rules <= rule_ids
        assert "REPRO401" in result_rules

    def test_locations_are_one_based(self, capsys):
        _, payload = self.run_sarif(
            capsys, str(PERF), "--no-baseline", "--family", "perf"
        )
        for result in payload["runs"][0]["results"]:
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1

    def test_baselined_findings_become_suppressions(self, capsys, tmp_path):
        findings = lint_paths([PERF], families=["perf"])
        baseline = tmp_path / "b.json"
        write_baseline(baseline, findings, Baseline(entries=[]))
        code, payload = self.run_sarif(
            capsys, str(PERF), "--family", "perf", "--baseline", str(baseline)
        )
        assert code == EXIT_CLEAN
        results = payload["runs"][0]["results"]
        assert results and all("suppressions" in result for result in results)
