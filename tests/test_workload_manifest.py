"""Tests for the declarative workload suite: manifests, interchange,
mixes, the sparse family and the workload registry — plus the
acceptance path: an imported + mixed suite through ``repro campaign``
with scalar and vectorized kernels producing identical results."""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orchestration import (
    CampaignPlan,
    expand_trace_arg,
    run_plan,
    standard_registry,
    trace_content_fingerprint,
    trace_spec_for,
)
from repro.orchestration.tasks import TraceSpec
from repro.trace.io import trace_to_bytes
from repro.trace.records import Trace, TraceMetadata
from repro.workloads import (
    InterchangeError,
    ManifestError,
    build_trace,
    compose_mix,
    convert,
    format_csv,
    format_text,
    generator_families,
    is_workload,
    load_manifest,
    parse_csv,
    parse_manifest,
    parse_text,
    read_any,
    register_family,
    resolve_entry,
    resolve_suite,
    resolve_workload,
    workload_names,
)

pytestmark = pytest.mark.workloads

REPO = Path(__file__).resolve().parent.parent
DEMO_MANIFEST = REPO / "examples" / "suites" / "demo.toml"


def small_trace(name="S", n=40, stride=4):
    pcs = [0x4000 + stride * (i % 7) for i in range(n)]
    outcomes = [bool((i // 3) % 2) for i in range(n)]
    meta = TraceMetadata(name=name, category="SPEC", instruction_count=5 * n, seed=9)
    return Trace(meta, pcs, outcomes)


class TestRegistry:
    def test_names_cover_all_families(self):
        names = workload_names()
        assert "SPEC00" in names and "WILD4" in names and "SPARSE1" in names
        assert len(names) == len(set(names)) == 48
        assert all(is_workload(name) for name in names)

    def test_unknown_name_raises(self):
        assert not is_workload("NOPE9")
        with pytest.raises(ValueError, match="unknown workload"):
            resolve_workload("NOPE9")

    def test_generator_families_registered(self):
        assert set(generator_families()) >= {"wild", "sparse"}

    def test_custom_family_is_resolvable(self):
        register_family(
            "unit-test",
            lambda name: name == "UT1",
            lambda name, branches: small_trace(name, branches or 10),
        )
        try:
            assert is_workload("UT1")
            assert len(build_trace("UT1", 12)) == 12
        finally:
            register_family("unit-test", lambda name: False, lambda n, b: None)

    def test_sparse_traces_are_deterministic(self):
        first = build_trace("SPARSE3", 4000)
        second = build_trace("SPARSE3", 4000)
        assert first.pcs == second.pcs
        assert first.outcomes == second.outcomes
        assert first.metadata.category == "SPARSE"

    def test_sparse_params_validated(self):
        sparse = generator_families()["sparse"]
        with pytest.raises(ValueError, match="distance"):
            sparse("X", seed=1, branches=100, distance=4)
        with pytest.raises(ValueError, match="noise"):
            sparse("X", seed=1, branches=100, noise=0.9)


class TestMixComposition:
    def test_deterministic_and_budgeted(self):
        parts = [small_trace("A"), small_trace("B")]
        one = compose_mix("M", parts, branches=100, seed=5)
        two = compose_mix("M", parts, branches=100, seed=5)
        assert one.pcs == two.pcs and one.outcomes == two.outcomes
        assert len(one) == 100

    def test_pc_spaces_are_disjoint(self):
        parts = [small_trace("A"), small_trace("B"), small_trace("C")]
        mix = compose_mix("M", parts, branches=300, seed=1)
        spaces = {pc >> 32 for pc in mix.pcs}
        assert spaces == {0, 1, 2}
        # Component streams are preserved within their own pc space.
        from_a = [pc for pc in mix.pcs if pc >> 32 == 0]
        assert set(from_a) <= set(parts[0].pcs)

    def test_seed_changes_schedule(self):
        parts = [small_trace("A"), small_trace("B")]
        assert (
            compose_mix("M", parts, branches=100, seed=1).pcs
            != compose_mix("M", parts, branches=100, seed=2).pcs
        )

    def test_short_components_wrap(self):
        parts = [small_trace("A", n=8), small_trace("B", n=8)]
        mix = compose_mix("M", parts, branches=200)
        assert len(mix) == 200

    def test_instruction_count_scales_with_consumption(self):
        parts = [small_trace("A", n=100), small_trace("B", n=100)]
        mix = compose_mix("M", parts, branches=100)
        # Both components run at 5 instructions/branch, so any schedule
        # lands at ~500 instructions for a 100-branch mix.
        assert 480 <= mix.instruction_count <= 520

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one component"):
            compose_mix("M", [])
        with pytest.raises(ValueError, match="non-empty"):
            compose_mix("M", [Trace(small_trace().metadata, [], [])])
        with pytest.raises(ValueError, match="chunk"):
            compose_mix("M", [small_trace()], chunk=1)
        with pytest.raises(ValueError, match="budget"):
            compose_mix("M", [small_trace()], branches=0)


_interchange_events = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2**48 - 1), st.booleans()),
    max_size=80,
)


class TestInterchange:
    @given(_interchange_events)
    @settings(max_examples=25, deadline=None)
    def test_text_round_trip_is_canonical(self, events):
        meta = TraceMetadata(
            name="T", category="EXT", instruction_count=max(1, len(events)),
            seed=4, extra={"tool": 3.0},
        )
        trace = Trace(meta, [pc for pc, _ in events], [t for _, t in events])
        text = format_text(trace)
        back = parse_text(text)
        assert back.pcs == trace.pcs
        assert back.outcomes == trace.outcomes
        assert back.metadata == trace.metadata
        assert format_text(back) == text

    @given(_interchange_events)
    @settings(max_examples=25, deadline=None)
    def test_csv_matches_binary_content(self, events):
        meta = TraceMetadata(
            name="C", category="EXT", instruction_count=max(1, len(events))
        )
        trace = Trace(meta, [pc for pc, _ in events], [t for _, t in events])
        back = parse_csv(format_csv(trace))
        assert trace_to_bytes(back) == trace_to_bytes(trace)

    def test_file_conversion_round_trips_bit_identically(self, tmp_path):
        trace = build_trace("MM1", 600)
        text_path = tmp_path / "t.bft"
        text_path.write_text(format_text(trace), encoding="utf-8")
        convert(text_path, tmp_path / "t.bfbp")
        convert(tmp_path / "t.bfbp", tmp_path / "back.bft")
        assert (tmp_path / "back.bft").read_bytes() == text_path.read_bytes()
        convert(tmp_path / "t.bfbp", tmp_path / "t.csv")
        convert(tmp_path / "t.csv", tmp_path / "back.bfbp")
        assert (
            (tmp_path / "back.bfbp").read_bytes()
            == (tmp_path / "t.bfbp").read_bytes()
        )

    def test_read_any_sniffs_all_formats(self, tmp_path):
        trace = small_trace()
        (tmp_path / "a.bft").write_text(format_text(trace), encoding="utf-8")
        (tmp_path / "a.csv").write_text(format_csv(trace), encoding="utf-8")
        (tmp_path / "a.bfbp").write_bytes(trace_to_bytes(trace))
        for name in ("a.bft", "a.csv", "a.bfbp"):
            assert read_any(tmp_path / name).pcs == trace.pcs

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "#%BFT 9\n",
            "#%BFT 1\n#! mystery: 1\n",
            "#%BFT 1\n#! name: a\n#! name: b\n",
            "#%BFT 1\n0x10 2\n",
            "#%BFT 1\n0x10\n",
            "#%BFT 1\nnotanumber 1\n",
            "#%BFT 1\n-4 1\n",
            "#%BFT 1\n#! name: a\n0x10 1\n#! category: late\n",
            "#%BFT 1\n#! name: a\n#! category: b\n#! instruction_count: nan\n",
        ],
    )
    def test_malformed_text_is_a_hard_error(self, bad):
        with pytest.raises(InterchangeError):
            parse_text(bad)

    def test_missing_required_metadata_is_a_hard_error(self):
        with pytest.raises(InterchangeError, match="missing required"):
            parse_text("#%BFT 1\n#! name: a\n0x10 1\n")

    def test_csv_requires_header(self):
        with pytest.raises(InterchangeError, match="header"):
            parse_csv("#%BFT-CSV 1\n#! name: a\n#! category: b\n"
                      "#! instruction_count: 5\n")

    def test_unrecognized_file_is_a_hard_error(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("pc,taken\n1,0\n")
        with pytest.raises(InterchangeError, match="unrecognized"):
            read_any(path)

    def test_unsupported_output_extension(self, tmp_path):
        (tmp_path / "a.bfbp").write_bytes(trace_to_bytes(small_trace()))
        with pytest.raises(InterchangeError, match="extension"):
            convert(tmp_path / "a.bfbp", tmp_path / "a.xyz")


def manifest_text(entries: str) -> str:
    return f'[suite]\nname = "t"\nversion = 1\n{entries}'


class TestManifestParsing:
    def test_toml_and_json_fingerprint_identically(self):
        toml_text = manifest_text(
            '[[entry]]\nkind = "synthetic"\nname = "FP1"\nbranches = 500\n'
        )
        json_text = json.dumps(
            {
                "suite": {"name": "t", "version": 1},
                "entry": [
                    {"kind": "synthetic", "name": "FP1", "branches": 500}
                ],
            }
        )
        assert (
            parse_manifest(toml_text).fingerprint()
            == parse_manifest(json_text).fingerprint()
        )

    def test_fingerprint_changes_with_content(self):
        base = manifest_text('[[entry]]\nkind = "synthetic"\nname = "FP1"\n')
        other = manifest_text('[[entry]]\nkind = "synthetic"\nname = "FP2"\n')
        assert parse_manifest(base).fingerprint() != parse_manifest(other).fingerprint()

    @pytest.mark.parametrize(
        "bad, message",
        [
            ("not [valid", "unparseable"),
            ('[suite]\nname = "t"\nversion = 2\n[[entry]]\nkind="synthetic"\nname="FP1"\n',
             "version"),
            ('[suite]\nname = "t"\nversion = 1\n', "no \\[\\[entry\\]\\]"),
            (manifest_text('[[entry]]\nkind = "teleport"\nname = "X"\n'),
             "unknown entry kind"),
            (manifest_text('[[entry]]\nkind = "synthetic"\nname = "FP1"\nwarp = 1\n'),
             "unknown key"),
            (manifest_text('[[entry]]\nkind = "generator"\nname = "G"\n'),
             "missing required"),
            (manifest_text(
                '[[entry]]\nkind = "synthetic"\nname = "FP1"\n'
                '[[entry]]\nkind = "synthetic"\nname = "FP1"\n'),
             "duplicate entry"),
            (manifest_text(
                '[[entry]]\nkind = "mix"\nname = "M"\ncomponents = ["LATER"]\n'),
             "not declared \\*earlier\\*"),
            (manifest_text(
                '[[entry]]\nkind = "generator"\nname = "G"\nfamily = "zap"\nseed = 1\n'),
             "unknown generator family"),
            (manifest_text(
                '[[entry]]\nkind = "synthetic"\nname = "FP1"\nbranches = -5\n'),
             "positive"),
            ('[suite]\nname = "t"\nversion = 1\nrogue = 1\n'
             '[[entry]]\nkind = "synthetic"\nname = "FP1"\n',
             "unknown \\[suite\\] key"),
        ],
    )
    def test_malformed_manifest_is_a_hard_error(self, bad, message):
        with pytest.raises(ManifestError, match=message):
            parse_manifest(bad)

    def test_closed_key_set_matches_declaration(self):
        from repro.workloads.manifest import MANIFEST_TYPES

        assert set(MANIFEST_TYPES) == {"synthetic", "generator", "file", "mix"}
        for required in MANIFEST_TYPES.values():
            assert "kind" in required and "name" in required


class TestManifestResolution:
    def test_demo_manifest_resolves_every_entry(self):
        manifest = load_manifest(DEMO_MANIFEST)
        traces = resolve_suite(manifest)
        assert list(traces) == ["FP1", "DEMO_STORM", "DEMO_IMPORT", "DEMO_MIX"]
        assert all(len(trace) > 0 for trace in traces.values())
        mix = traces["DEMO_MIX"]
        assert {pc >> 32 for pc in mix.pcs} == {0, 1}

    def test_pin_catches_drift_with_regeneration_hint(self, tmp_path):
        trace = small_trace()
        (tmp_path / "ext.csv").write_text(format_csv(trace), encoding="utf-8")
        text = manifest_text(
            '[[entry]]\nkind = "file"\nname = "EXT"\npath = "ext.csv"\n'
            f'fingerprint = "{"0" * 64}"\n'
        )
        manifest = parse_manifest(text, base_dir=tmp_path)
        with pytest.raises(ManifestError, match="update the pin") as excinfo:
            resolve_entry(manifest, "EXT")
        assert trace_content_fingerprint(trace) in str(excinfo.value)

    def test_pin_accepts_matching_content(self, tmp_path):
        trace = small_trace()
        (tmp_path / "ext.csv").write_text(format_csv(trace), encoding="utf-8")
        pin = trace_content_fingerprint(trace)
        text = manifest_text(
            '[[entry]]\nkind = "file"\nname = "EXT"\npath = "ext.csv"\n'
            f'fingerprint = "{pin}"\n'
        )
        resolved = resolve_entry(parse_manifest(text, base_dir=tmp_path), "EXT")
        assert trace_content_fingerprint(resolved) == pin

    def test_generator_entry_rejects_bad_params(self):
        text = manifest_text(
            '[[entry]]\nkind = "generator"\nname = "G"\nfamily = "sparse"\n'
            'seed = 1\nparams = { distance = 4 }\n'
        )
        with pytest.raises(ManifestError, match="rejected its params"):
            resolve_entry(parse_manifest(text), "G")

    def test_unknown_entry_name(self):
        manifest = load_manifest(DEMO_MANIFEST)
        with pytest.raises(ManifestError, match="no entry"):
            resolve_entry(manifest, "GHOST")


class TestTraceSpecManifest:
    def test_spec_resolves_and_memoizes(self):
        spec = TraceSpec.from_manifest(DEMO_MANIFEST, "DEMO_MIX")
        trace = spec.resolve()
        assert spec.resolve() is trace

    def test_identity_is_content_addressed(self):
        spec = TraceSpec.from_manifest(DEMO_MANIFEST, "DEMO_MIX")
        identity = spec.identity()
        manifest = load_manifest(DEMO_MANIFEST)
        assert identity.startswith(f"manifest:{manifest.fingerprint()}:DEMO_MIX:")
        assert identity.endswith(trace_content_fingerprint(spec.resolve()))

    def test_wire_round_trip(self):
        spec = TraceSpec.from_manifest(DEMO_MANIFEST, "DEMO_IMPORT")
        assert TraceSpec.from_wire(spec.to_wire()) == spec

    def test_trace_spec_for_parses_refs(self):
        spec = trace_spec_for(f"@{DEMO_MANIFEST}#FP1")
        assert spec.kind == "manifest" and spec.name == "FP1"
        with pytest.raises(ValueError, match="must look like"):
            trace_spec_for("@only-a-path.toml#")
        assert trace_spec_for("SPARSE2").kind == "suite"

    def test_bare_manifest_ref_expands_to_all_entries(self):
        specs = expand_trace_arg(f"@{DEMO_MANIFEST}")
        assert [spec.name for spec in specs] == [
            "FP1", "DEMO_STORM", "DEMO_IMPORT", "DEMO_MIX",
        ]
        assert all(spec.kind == "manifest" for spec in specs)


class TestLoadgenSuite:
    def test_suite_profile_builds_refs(self):
        from repro.serving import suite_profile

        profile = suite_profile(str(DEMO_MANIFEST))
        assert profile.name == "suite:demo"
        assert all(w.startswith("@") and "#" in w for w in profile.workloads)

    def test_suite_sessions_must_run_cold(self):
        from repro.serving import run_load, suite_profile

        profile = suite_profile(str(DEMO_MANIFEST))
        with pytest.raises(ValueError, match="cold"):
            run_load(("127.0.0.1", 1), profile=profile, sessions=1, warm=True)


class TestAcceptance:
    """The imported + mixed suite runs through ``repro campaign`` with
    scalar and vectorized kernels producing identical MPKI/state_hash."""

    def test_campaign_scalar_and_vectorized_agree(self):
        registry = standard_registry()
        results = {}
        for kernel in ("scalar", "vectorized"):
            plan = CampaignPlan(
                factories={"gshare": registry["gshare"]},
                traces=[
                    TraceSpec.from_manifest(DEMO_MANIFEST, "DEMO_IMPORT"),
                    TraceSpec.from_manifest(DEMO_MANIFEST, "DEMO_MIX"),
                ],
                kernel=kernel,
            )
            results[kernel] = run_plan(plan)["gshare"]
        for scalar, vectorized in zip(results["scalar"], results["vectorized"]):
            assert scalar.mpki == vectorized.mpki
            assert scalar.mispredictions == vectorized.mispredictions
            assert scalar.branches == vectorized.branches

    def test_state_hash_identical_across_kernels(self):
        from repro.sim.batchkernel import simulate_batch
        from repro.sim.simulator import simulate

        registry = standard_registry()
        trace = resolve_entry(load_manifest(DEMO_MANIFEST), "DEMO_MIX")
        scalar_predictor = registry["gshare"]()
        vector_predictor = registry["gshare"]()
        scalar_result = simulate(scalar_predictor, trace)
        vector_result = simulate_batch(vector_predictor, trace, kernel="vectorized")
        assert scalar_result.mispredictions == vector_result.mispredictions
        assert scalar_predictor.state_hash() == vector_predictor.state_hash()
