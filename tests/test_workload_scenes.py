"""Tests for the synthetic program model (scenes)."""

import pytest

from repro.trace.stats import compute_stats
from repro.workloads.cfg import (
    BiasedRun,
    ConstantLoop,
    DistantCorrelation,
    Fig4Loop,
    FlagReader,
    FlagSetter,
    LocalPeriodic,
    Machine,
    NoisyBranch,
    PhasedBiased,
    Program,
    RepeatedInnerLoop,
    Sequence,
    ShortCorrelation,
    TraceBuilder,
    VariableLoop,
)


def run_scene(scene, seed=1, times=1):
    machine = Machine(seed)
    out = TraceBuilder()
    for _ in range(times):
        scene.run(machine, out)
    return out


class TestBiasedRun:
    def test_emits_count_branches(self):
        out = run_scene(BiasedRun(0x1000, 10))
        assert len(out) == 10

    def test_branches_are_biased(self):
        scene = BiasedRun(0x1000, 6)
        out = run_scene(scene, times=20)
        per_pc = {}
        for pc, taken in zip(out.pcs, out.outcomes):
            per_pc.setdefault(pc, set()).add(taken)
        assert all(len(dirs) == 1 for dirs in per_pc.values())

    def test_distinct_pool_cycles(self):
        scene = BiasedRun(0x1000, 100, distinct=10)
        out = run_scene(scene)
        assert len(set(out.pcs)) == 10
        assert len(out) == 100

    def test_deterministic_across_machines(self):
        a = run_scene(BiasedRun(0x1000, 8), seed=1)
        b = run_scene(BiasedRun(0x1000, 8), seed=99)
        assert a.outcomes == b.outcomes

    def test_validation(self):
        with pytest.raises(ValueError):
            BiasedRun(0x1000, 0)
        with pytest.raises(ValueError):
            BiasedRun(0x1000, 4, distinct=5)


class TestLoops:
    def test_constant_loop_shape(self):
        out = run_scene(ConstantLoop(0x2000, trip=5))
        loop_outcomes = [t for pc, t in zip(out.pcs, out.outcomes) if pc == 0x2000]
        assert loop_outcomes == [True] * 4 + [False]

    def test_constant_loop_with_body(self):
        out = run_scene(ConstantLoop(0x2000, trip=3, body=BiasedRun(0x3000, 2)))
        assert len(out) == 3 * 3

    def test_constant_loop_validation(self):
        with pytest.raises(ValueError):
            ConstantLoop(0x2000, trip=1)

    def test_variable_loop_trips_in_set(self):
        scene = VariableLoop(0x2000, [3, 5])
        for seed in range(5):
            out = run_scene(scene, seed=seed)
            assert len(out) in (3, 5)

    def test_variable_loop_validation(self):
        with pytest.raises(ValueError):
            VariableLoop(0x2000, [])
        with pytest.raises(ValueError):
            VariableLoop(0x2000, [1])

    def test_approx_branches(self):
        assert ConstantLoop(0x2000, trip=5).approx_branches() == 5
        body = BiasedRun(0x3000, 2)
        assert ConstantLoop(0x2000, trip=3, body=body).approx_branches() == 9


class TestFlags:
    def test_setter_stores_outcome(self):
        machine = Machine(3)
        out = TraceBuilder()
        setter = FlagSetter(0x10, "f")
        setter.run(machine, out)
        assert machine.flags["f"] == out.outcomes[0]

    def test_reader_follows_flag(self):
        machine = Machine(3)
        out = TraceBuilder()
        machine.flags["f"] = True
        FlagReader(0x20, "f").run(machine, out)
        assert out.outcomes == [True]
        FlagReader(0x24, "f", invert=True).run(machine, out)
        assert out.outcomes == [True, False]

    def test_reader_unset_flag_defaults_false(self):
        out = TraceBuilder()
        FlagReader(0x20, "missing").run(Machine(1), out)
        assert out.outcomes == [False]

    def test_reader_noise_flips_sometimes(self):
        machine = Machine(5)
        out = TraceBuilder()
        machine.flags["f"] = True
        reader = FlagReader(0x20, "f", noise=0.5)
        for _ in range(200):
            reader.run(machine, out)
        flips = out.outcomes.count(False)
        assert 60 < flips < 140

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            FlagReader(0x20, "f", noise=1.5)


class TestShortCorrelation:
    def test_reader_copies_source(self):
        scene = ShortCorrelation(0x4000, depth=4)
        machine = Machine(9)
        out = TraceBuilder()
        for _ in range(30):
            scene.run(machine, out)
        # For every activation: the branch at pc+4 equals the source, and
        # pc+8 is its inverse.
        events = list(zip(out.pcs, out.outcomes))
        sources = [t for pc, t in events if pc == 0x4000]
        readers = [t for pc, t in events if pc == 0x4004]
        inverses = [t for pc, t in events if pc == 0x4008]
        assert readers == sources
        assert inverses == [not s for s in sources]

    def test_validation(self):
        with pytest.raises(ValueError):
            ShortCorrelation(0x4000, depth=0)
        with pytest.raises(ValueError):
            ShortCorrelation(0x4000, depth=3, pre_pad=-1)


class TestDistantCorrelation:
    def make(self, **kwargs):
        defaults = dict(
            leader_pc=0x8000,
            flag="dc",
            biased_filler=20,
            nonbiased_filler_pcs=[0xB000 + 4 * i for i in range(4)],
            filler_repeats=3,
            follower_pcs=[0xC000, 0xC004],
            pre_pad=10,
            pre_filler_pcs=[0xD000, 0xD004],
        )
        defaults.update(kwargs)
        return DistantCorrelation(**defaults)

    def test_raw_distance(self):
        scene = self.make()
        assert scene.raw_distance == 20 + 3 * 4

    def test_follower_matches_leader(self):
        scene = self.make()
        machine = Machine(4)
        out = TraceBuilder()
        for _ in range(20):
            scene.run(machine, out)
        events = list(zip(out.pcs, out.outcomes))
        leaders = [t for pc, t in events if pc == 0x8000]
        follower0 = [t for pc, t in events if pc == 0xC000]
        follower1 = [t for pc, t in events if pc == 0xC004]
        assert follower0 == leaders  # noise=0
        assert follower1 == [not t for t in leaders]  # odd followers invert

    def test_filler_is_non_biased_and_deterministic(self):
        from repro.trace.records import Trace, TraceMetadata

        scene = self.make()
        out = run_scene(scene, seed=1, times=3)
        meta = TraceMetadata(name="x", category="SPEC", instruction_count=len(out) * 5)
        stats = compute_stats(Trace(meta, out.pcs, out.outcomes))
        for pc in scene._nonbiased_pcs:
            assert not stats.profiles[pc].is_biased

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            self.make(filler_repeats=1)

    def test_approx_branches_counts_everything(self):
        scene = self.make()
        out = run_scene(scene)
        assert abs(scene.approx_branches() - len(out)) <= 1


class TestOtherScenes:
    def test_noisy_branch_statistics(self):
        out = run_scene(NoisyBranch(0x5000, p_taken=0.8), times=1000)
        taken = sum(out.outcomes)
        assert 720 < taken < 880

    def test_noisy_validation(self):
        with pytest.raises(ValueError):
            NoisyBranch(0x5000, p_taken=1.2)

    def test_local_periodic_cycles(self):
        scene = LocalPeriodic(0x6000, [True, True, False])
        out = run_scene(scene, times=6)
        assert out.outcomes == [True, True, False] * 2

    def test_local_periodic_reset(self):
        scene = LocalPeriodic(0x6000, [True, False])
        run_scene(scene, times=1)
        scene.reset()
        out = run_scene(scene, times=2)
        assert out.outcomes == [True, False]

    def test_phased_biased_flips(self):
        scene = PhasedBiased(0x7000, count=4, flip_after=3)
        machine = Machine(1)
        out = TraceBuilder()
        for _ in range(6):
            scene.run(machine, out)
        first = out.outcomes[:4]
        last = out.outcomes[-4:]
        assert [not b for b in first] == last

    def test_repeated_inner_loop_deterministic(self):
        scene = RepeatedInnerLoop(0x9000, [0xA000, 0xA004], iterations=4)
        a = run_scene(scene, seed=1)
        b = run_scene(scene, seed=2)
        assert a.outcomes == b.outcomes
        assert len(a) == 4 * 3

    def test_fig4_loop_special_iteration(self):
        scene = Fig4Loop(0x100, 0x200, 0x300, iterations=6, special_index=2, flag="g")
        machine = Machine(11)
        out = TraceBuilder()
        for _ in range(40):
            scene.run(machine, out)
        events = list(zip(out.pcs, out.outcomes))
        leaders = [t for pc, t in events if pc == 0x100]
        x_outcomes = [t for pc, t in events if pc == 0x300]
        # X is taken exactly once per activation in which the flag was set.
        assert sum(x_outcomes) == sum(leaders)

    def test_fig4_validation(self):
        with pytest.raises(ValueError):
            Fig4Loop(0x100, 0x200, 0x300, iterations=4, special_index=4, flag="g")

    def test_sequence_runs_in_order(self):
        seq = Sequence([BiasedRun(0x100, 2), BiasedRun(0x200, 3)])
        out = run_scene(seq)
        assert len(out) == 5
        assert out.pcs[0] < 0x200 <= out.pcs[2]

    def test_sequence_validation(self):
        with pytest.raises(ValueError):
            Sequence([])


class TestProgram:
    def test_generates_requested_budget(self):
        program = Program(
            "t", "SPEC", [(BiasedRun(0x100, 5), 1.0), (NoisyBranch(0x200), 1.0)], seed=3
        )
        trace = program.generate(500)
        assert len(trace) >= 500

    def test_deterministic(self):
        def build():
            return Program(
                "t", "SPEC", [(BiasedRun(0x100, 5), 1.0), (NoisyBranch(0x200), 1.0)], seed=3
            )

        t1 = build().generate(300)
        t2 = build().generate(300)
        assert t1.pcs == t2.pcs
        assert t1.outcomes == t2.outcomes

    def test_regenerate_same_program_object(self):
        program = Program("t", "SPEC", [(LocalPeriodic(0x100, [True, False]), 1.0)], seed=3)
        t1 = program.generate(100)
        t2 = program.generate(100)
        assert t1.outcomes == t2.outcomes

    def test_share_weights_balance_scene_sizes(self):
        """A big scene with the same share must not dominate the stream."""
        big = BiasedRun(0x100, 100)
        small = NoisyBranch(0x200)
        program = Program("t", "SPEC", [(big, 1.0), (small, 1.0)], seed=3)
        trace = program.generate(4000)
        big_branches = sum(1 for pc in trace.pcs if pc < 0x200)
        fraction = big_branches / len(trace)
        assert 0.3 < fraction < 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            Program("t", "SPEC", [], seed=1)
        with pytest.raises(ValueError):
            Program("t", "SPEC", [(NoisyBranch(0x1), 0)], seed=1)
        program = Program("t", "SPEC", [(NoisyBranch(0x1), 1)], seed=1)
        with pytest.raises(ValueError):
            program.generate(0)
