"""REPRO006 fixture: mutable predictor state the snapshot misses."""

from repro.core.base import BranchPredictor


class NoSnapshot(BranchPredictor):  # REPRO006: mutable state, no snapshot
    name = "no-snapshot"

    def __init__(self) -> None:
        self.table = [0] * 64

    def predict(self, pc: int) -> bool:
        return self.table[pc & 63] >= 0

    def train(self, pc: int, taken: bool) -> None:
        self.table[pc & 63] = 1 if taken else -1

    def storage_bits(self) -> int:
        return 64 * 2

    def reset(self) -> None:
        self.__init__()


class PartialSnapshot(BranchPredictor):
    name = "partial-snapshot"

    def __init__(self) -> None:
        self.table = [0] * 64
        self.shadow = {}  # REPRO006: not serialized below
        self.history = 0  # immutable int: not REPRO006's business

    def predict(self, pc: int) -> bool:
        return self.table[pc & 63] >= 0

    def train(self, pc: int, taken: bool) -> None:
        self.table[pc & 63] = 1 if taken else -1
        self.shadow[pc] = taken

    def storage_bits(self) -> int:
        return 64 * 2

    def reset(self) -> None:
        self.__init__()

    def _state_payload(self) -> dict:
        return {"table": list(self.table), "history": self.history}

    def _restore_payload(self, payload: dict) -> None:
        self.table = [int(v) for v in payload["table"]]
        self.history = int(payload["history"])
