"""Fixture: telemetry/protocol/manifest schema drift (REPRO3xx).

Declares its own miniature ``EVENT_FIELDS`` / ``MESSAGE_TYPES`` /
``MANIFEST_TYPES`` so the pass is self-contained, and defines
``send_message`` / ``parse_manifest`` so it counts as both a protocol
module and a manifest module.
"""

EVENT_FIELDS = {
    "task_start": ("index", "config"),
    "task_finish": ("index", "config", "mpki"),
}

MESSAGE_TYPES = {
    "hello": ("executor", "protocol"),
    "ok": (),
}

MANIFEST_TYPES = {
    "synthetic": ("kind", "name"),
    "mix": ("kind", "name", "components"),
}


def send_message(sock, message):
    sock.sendall(repr(message).encode())


def emit_known(telemetry):
    telemetry.emit("task_start", index=0, config="bf")  # clean


def emit_unknown(telemetry):
    telemetry.emit("task_teleport", index=0)  # REPRO301


def emit_incomplete(telemetry):
    telemetry.emit("task_finish", index=0)  # REPRO302: misses config, mpki


def emit_forwarded(telemetry, **fields):
    telemetry.emit("task_finish", **fields)  # clean: **kwargs may supply rest


def greet(sock):
    send_message(sock, {"type": "hello", "executor": "x", "protocol": 1})  # clean


def hijack(sock):
    send_message(sock, {"type": "hijack"})  # REPRO303


def greet_incomplete(sock):
    send_message(sock, {"type": "hello", "executor": "x"})  # REPRO304


def merge_ok(sock, extra):
    send_message(sock, {"type": "hello", **extra})  # clean: splat-merged


def parse_manifest(text):
    return text  # marker: this fixture counts as a manifest module


def entry_ok():
    return {"kind": "synthetic", "name": "FP1"}  # clean


def entry_unknown():
    return {"kind": "teleport", "name": "X"}  # REPRO305


def entry_incomplete():
    return {"kind": "mix", "name": "M"}  # REPRO306: misses components


def entry_merged(defaults):
    return {"kind": "mix", **defaults}  # clean: splat-merged
