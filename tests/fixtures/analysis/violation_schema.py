"""Fixture: telemetry/protocol schema drift (REPRO3xx).

Declares its own miniature ``EVENT_FIELDS`` / ``MESSAGE_TYPES`` so the
pass is self-contained, and defines ``send_message`` so it counts as a
protocol module.
"""

EVENT_FIELDS = {
    "task_start": ("index", "config"),
    "task_finish": ("index", "config", "mpki"),
}

MESSAGE_TYPES = {
    "hello": ("executor", "protocol"),
    "ok": (),
}


def send_message(sock, message):
    sock.sendall(repr(message).encode())


def emit_known(telemetry):
    telemetry.emit("task_start", index=0, config="bf")  # clean


def emit_unknown(telemetry):
    telemetry.emit("task_teleport", index=0)  # REPRO301


def emit_incomplete(telemetry):
    telemetry.emit("task_finish", index=0)  # REPRO302: misses config, mpki


def emit_forwarded(telemetry, **fields):
    telemetry.emit("task_finish", **fields)  # clean: **kwargs may supply rest


def greet(sock):
    send_message(sock, {"type": "hello", "executor": "x", "protocol": 1})  # clean


def hijack(sock):
    send_message(sock, {"type": "hijack"})  # REPRO303


def greet_incomplete(sock):
    send_message(sock, {"type": "hello", "executor": "x"})  # REPRO304


def merge_ok(sock, extra):
    send_message(sock, {"type": "hello", **extra})  # clean: splat-merged
