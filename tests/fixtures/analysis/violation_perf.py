"""Fixture: per-event costs inside the hot closure (REPRO4xx).

``WastefulPredictor`` subclasses ``BranchPredictor``, so its
``predict``/``train``/``update`` methods are hot roots and helpers they
call are pulled into the closure interprocedurally.  ``cold_setup`` and
``reset`` hold the same constructs outside the closure (negatives), and
``update`` carries a pragma waiver.
"""

import numpy as np

from repro.predictors.base import BranchPredictor, hot_path


class WastefulPredictor(BranchPredictor):
    name = "wasteful"

    def __init__(self) -> None:
        self.weights = [0] * 16
        self.items = []

    def predict(self, pc: int) -> bool:
        rows = [w for w in self.weights]  # REPRO401 comprehension per event
        label = f"pc-{pc}"  # REPRO401 f-string per event
        value = self._helper(pc)
        return sum(rows) + value >= 0 and bool(label)

    def _helper(self, pc: int) -> int:
        # Hot via WastefulPredictor.predict -> _helper.
        for i in range(4):
            self.items.append(i)  # REPRO402 attribute chain in loop
        try:  # REPRO403 try/except as control flow
            return self.weights[pc]
        except IndexError:
            return 0

    def train(self, pc: int, taken: bool, **extra) -> None:  # REPRO405 packing
        key = lambda: pc  # noqa: E731  # REPRO404 closure per event
        self._log(key())

    def _log(self, message) -> None:
        # Hot via WastefulPredictor.train -> _log.
        print(message)  # REPRO406 telemetry on the hot path

    def update(self, pc: int) -> list:
        # perf: allow(REPRO401): fixture-sanctioned waived allocation
        return [pc]

    def reset(self) -> None:
        # Cold path: identical constructs, no findings.
        self.weights = [w for w in self.weights]
        self.items = []
        label = f"reset-{len(self.weights)}"
        self._cold_tail(label)

    def _cold_tail(self, message) -> None:
        print(message)


@hot_path
def hot_marked_sum(values) -> int:
    total = 0
    for value in values:
        total += value
    return total  # clean: no per-event costs


@hot_path
def hot_marked_packing(values) -> dict:
    return {value: value for value in values}  # REPRO401 dict comprehension


class ArrayLoopPredictor(BranchPredictor):
    """REPRO407 through a ``self.<attr>`` the class assigns from numpy."""

    name = "array-loop"

    def __init__(self) -> None:
        self.counters = np.zeros(16, dtype=np.int8)

    def predict(self, pc: int) -> bool:
        total = 0
        for counter in self.counters:  # REPRO407 loop over numpy attr
            total += int(counter)
        return total >= 0

    def train(self, pc: int, taken: bool) -> None:
        # Negative: .tolist() escapes numpy-land before the loop.
        for counter in self.counters.tolist():
            if counter:
                return


@hot_path
def hot_numpy_loop(outcomes) -> int:
    flags = np.flatnonzero(outcomes)
    total = 0
    for index in flags:  # REPRO407 loop over inferred numpy local
        total += int(index)
    for index in range(len(flags)):  # REPRO407 range(len(arr)) variant
        total += index
    for pair in enumerate(flags):  # REPRO407 iterator-forwarded variant
        total += pair[0]
    return total


@hot_path
def hot_numpy_waived(deltas) -> int:
    prefix = np.cumsum(deltas)
    total = 0
    # perf: allow(REPRO407): fixture-sanctioned sequential recurrence
    for value in prefix:
        total = max(total, int(value))
    return total


def cold_setup() -> dict:
    # Unmarked free function: outside the closure, no findings.
    return {index: f"slot-{index}" for index in range(8)}


def cold_numpy_loop(values) -> int:
    # Unmarked: the same numpy loop outside the closure, no findings.
    array = np.asarray(values)
    total = 0
    for value in array:
        total += int(value)
    return total
