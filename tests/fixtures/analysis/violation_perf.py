"""Fixture: per-event costs inside the hot closure (REPRO4xx).

``WastefulPredictor`` subclasses ``BranchPredictor``, so its
``predict``/``train``/``update`` methods are hot roots and helpers they
call are pulled into the closure interprocedurally.  ``cold_setup`` and
``reset`` hold the same constructs outside the closure (negatives), and
``update`` carries a pragma waiver.
"""

from repro.predictors.base import BranchPredictor, hot_path


class WastefulPredictor(BranchPredictor):
    name = "wasteful"

    def __init__(self) -> None:
        self.weights = [0] * 16
        self.items = []

    def predict(self, pc: int) -> bool:
        rows = [w for w in self.weights]  # REPRO401 comprehension per event
        label = f"pc-{pc}"  # REPRO401 f-string per event
        value = self._helper(pc)
        return sum(rows) + value >= 0 and bool(label)

    def _helper(self, pc: int) -> int:
        # Hot via WastefulPredictor.predict -> _helper.
        for i in range(4):
            self.items.append(i)  # REPRO402 attribute chain in loop
        try:  # REPRO403 try/except as control flow
            return self.weights[pc]
        except IndexError:
            return 0

    def train(self, pc: int, taken: bool, **extra) -> None:  # REPRO405 packing
        key = lambda: pc  # noqa: E731  # REPRO404 closure per event
        self._log(key())

    def _log(self, message) -> None:
        # Hot via WastefulPredictor.train -> _log.
        print(message)  # REPRO406 telemetry on the hot path

    def update(self, pc: int) -> list:
        # perf: allow(REPRO401): fixture-sanctioned waived allocation
        return [pc]

    def reset(self) -> None:
        # Cold path: identical constructs, no findings.
        self.weights = [w for w in self.weights]
        self.items = []
        label = f"reset-{len(self.weights)}"
        self._cold_tail(label)

    def _cold_tail(self, message) -> None:
        print(message)


@hot_path
def hot_marked_sum(values) -> int:
    total = 0
    for value in values:
        total += value
    return total  # clean: no per-event costs


@hot_path
def hot_marked_packing(values) -> dict:
    return {value: value for value in values}  # REPRO401 dict comprehension


def cold_setup() -> dict:
    # Unmarked free function: outside the closure, no findings.
    return {index: f"slot-{index}" for index in range(8)}
