"""Concurrency-rule fixtures: every REPRO5xx rule must fire here.

Miniature, self-contained copies of the real serving/distribution
shapes: a two-lock ABBA deadlock, blocking socket I/O inside critical
sections, lock-guarded state handed to threads, nested non-reentrant
acquisition, user callbacks under the lock, and a protocol handler
sending messages in an order the declared FSM does not admit.  The
``Disciplined`` class and ``good_handshake`` at the bottom are the
clean counterparts and must stay finding-free.
"""

import threading


def send_message(sock, message):  # protocol-module marker
    sock.sendall(message)


PROTOCOL_FSMS = {
    "serving": {
        "start": {"serve_hello": "greeted"},
        "greeted": {"session_open": "open", "serve_bye": "end"},
        "open": {
            "session_open": "open",
            "events": "open",
            "session_close": "greeted",
            "serve_bye": "end",
        },
        "end": {},
    },
}


class AbbaDeadlock:
    """Acquires alpha->beta directly and beta->alpha through a helper."""

    def __init__(self):
        self.alpha = threading.Lock()
        self.beta = threading.Lock()
        self.stats = {}

    def forward(self):
        with self.alpha:  # REPRO501: alpha -> beta edge
            with self.beta:
                self.stats["forward"] = True

    def backward(self):
        with self.beta:  # REPRO501: beta -> alpha edge (via _touch)
            self._touch()

    def _touch(self):
        with self.alpha:
            self.stats["backward"] = True


class BlockingUnderLock:
    """Socket I/O inside the critical section, direct and via a helper."""

    def __init__(self, sock):
        self.sock = sock
        self._lock = threading.Lock()
        self.buffered = []

    def pump(self):
        with self._lock:
            chunk = self.sock.recv(4096)  # REPRO502: direct recv under lock
            self.buffered.append(chunk)

    def relay(self, payload):
        with self._lock:
            send_message(self.sock, payload)  # REPRO502: sendall via helper


class ThreadEscape:
    """Guarded state handed to unsynchronized threads."""

    def __init__(self):
        self._lock = threading.Lock()
        self.counters = {}

    def bump(self, key):
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + 1

    def spawn(self):
        # REPRO503: guarded self.counters passed as a Thread argument
        worker = threading.Thread(target=drain, args=(self.counters,))
        worker.start()
        return worker

    def spawn_closure(self):
        def reset():
            self.counters.clear()

        # REPRO503: closure target captures guarded self.counters
        worker = threading.Thread(target=reset)
        worker.start()
        return worker


def drain(counters):
    counters.clear()


class NestedLock:
    """Re-acquires its own non-reentrant lock through a helper."""

    def __init__(self):
        self._lock = threading.Lock()
        self.pending = []

    def add(self, item):
        with self._lock:
            self.pending.append(item)
            self._flush()  # REPRO504: _flush re-acquires self._lock

    def _flush(self):
        with self._lock:
            self.pending.clear()


class CallbackUnderLock:
    """User-supplied callables invoked inside the critical section."""

    def __init__(self, on_event):
        self._lock = threading.Lock()
        self.on_event = on_event
        self.subscribers = []
        self.log = []

    def subscribe(self, fn):
        with self._lock:
            self.subscribers.append(fn)

    def record(self, item):
        with self._lock:
            self.log.append(item)
            self.on_event(item)  # REPRO505: ctor-param callback under lock

    def publish(self, item):
        with self._lock:
            for subscriber in self.subscribers:
                subscriber(item)  # REPRO505: subscriber callback under lock


def bad_handshake(sock):
    send_message(sock, {"type": "serve_hello", "token": ""})
    # REPRO506: "events" cannot follow serve_hello (no session_open yet)
    send_message(sock, {"type": "events", "events": []})


class Waived:
    """A justified pragma suppresses the finding."""

    def __init__(self, sock):
        self.sock = sock
        self._lock = threading.Lock()

    def flush(self, payload):
        with self._lock:
            # concurrency: allow(REPRO502): single-shot shutdown path
            self.sock.sendall(payload)


class Disciplined:
    """Clean counterpart: snapshot under the lock, I/O after release."""

    def __init__(self, sock):
        self.sock = sock
        self._lock = threading.Lock()
        self.queue = []

    def enqueue(self, item):
        with self._lock:
            self.queue.append(item)

    def flush(self):
        with self._lock:
            batch = list(self.queue)
            self.queue.clear()
        for item in batch:
            self.sock.sendall(item)
        return len(batch)


def good_handshake(sock):
    send_message(sock, {"type": "serve_hello", "token": ""})
    send_message(sock, {"type": "session_open", "config": {}})
    send_message(sock, {"type": "events", "events": []})
    send_message(sock, {"type": "session_close", "session": "s1"})
    send_message(sock, {"type": "serve_bye"})
