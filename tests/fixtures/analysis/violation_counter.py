"""REPRO001 fixture: bare increments on predictor state, no bound in sight."""


class LeakyCounterPredictor:
    def __init__(self) -> None:
        self.streak = 0
        self.table = [0] * 16

    def train(self, taken: bool) -> None:
        if taken:
            self.streak += 1  # REPRO001: no saturation, no guard
        else:
            self.streak -= 1  # REPRO001
        self.table[3] += 1  # REPRO001: subscript on attribute state

    def bounded_ok(self) -> None:
        # Pre-guard idiom: enclosing if mentions the target — not flagged.
        if self.streak < 7:
            self.streak += 1

    def post_check_ok(self) -> None:
        # Post-check idiom: adjacent sibling if clamps — not flagged.
        self.streak += 1
        if self.streak >= 7:
            self.streak = 7
