"""Fixture: lock-guarded state touched without the lock (REPRO2xx)."""

import threading


class LeakyCoordinator:
    def __init__(self):
        self._lock = threading.Lock()
        self._leases = {}
        self._settled = {}

    def claim(self, executor):
        with self._lock:
            lease_id = len(self._leases)
            self._leases[lease_id] = executor
            return lease_id

    def complete(self, lease_id, value):
        with self._lock:
            self._leases.pop(lease_id, None)
            self._settled[lease_id] = value

    def outstanding(self):
        return len(self._leases)  # REPRO201: unguarded read, public method

    def drop_all(self):
        self._leases.clear()  # REPRO201: unguarded mutation, public method

    def watch(self):
        thread = threading.Thread(target=self._expire_loop, daemon=True)
        thread.start()
        return thread

    def _expire_loop(self):
        for lease_id in list(self._leases):  # REPRO202: thread target, no lock
            self.complete(lease_id, None)

    def settled_view(self):
        with self._lock:
            return dict(self._settled)  # clean: read under the lock


class Unlocked:
    """No lock anywhere — the pass must stay silent."""

    def __init__(self):
        self._items = []

    def push(self, item):
        self._items.append(item)
