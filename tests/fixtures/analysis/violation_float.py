"""REPRO003 fixture: float arithmetic on the predict/train paths."""


class AnalogishPredictor:
    def __init__(self) -> None:
        # Floats in __init__ are fine — precomputation is the sanctioned fix.
        self.scale = 1.0 / 3

    def predict(self, pc: int) -> bool:
        weight = pc * 0.5  # REPRO003: float constant
        return weight / 2 > 1  # REPRO003: true division

    def train(self, pc: int, taken: bool) -> None:
        self.scale = float(pc)  # REPRO003: float() conversion

    def helper(self) -> float:
        return 2.5  # fine: not on a predict/train path
