"""REPRO004 fixture: nondeterministic imports and entropy sources."""

import os
import random  # REPRO004
from time import perf_counter  # REPRO004


def roll() -> int:
    seed = os.urandom(8)  # REPRO004
    random.seed(seed)
    return int(perf_counter())
