"""Negative fixture: hardware-faithful module no REPRO rule should flag."""

from dataclasses import dataclass

from repro.common.counters import SaturatingCounter
from repro.core.base import BranchPredictor


@dataclass(frozen=True)
class TidyConfig:
    table_entries: int = 2048
    log2_rows: int = 9


class TidyPredictor(BranchPredictor):
    def __init__(self, config: TidyConfig = TidyConfig()) -> None:
        self.config = config
        self.table = [SaturatingCounter(bits=2) for _ in range(config.table_entries)]
        self.age = 0

    @property
    def name(self) -> str:
        return "tidy"

    def predict(self, pc: int) -> bool:
        return self.table[pc & (self.config.table_entries - 1)].taken

    def train(self, pc: int, taken: bool) -> None:
        self.table[pc & (self.config.table_entries - 1)].update(taken)
        if self.age < 255:
            self.age += 1

    def storage_bits(self) -> int:
        return 2 * self.config.table_entries + 8

    def reset(self) -> None:
        self.__init__(self.config)

    def _state_payload(self) -> dict:
        return {
            "table": [counter.value for counter in self.table],
            "age": self.age,
        }

    def _restore_payload(self, payload: dict) -> None:
        for counter, value in zip(self.table, payload["table"]):
            counter.value = value
        self.age = payload["age"]
