"""Fixture: nondeterminism reaching fingerprint/state sinks (REPRO1xx).

Exercised with ``--family det``; the hw family also flags the ``time``
import here (REPRO004), which is the point of keeping families separate.
"""

import hashlib
import os
import time

from repro.orchestration.telemetry import wall_clock


def cache_key_from_clock():
    stamp = time.time()
    return hashlib.sha256(f"key-{stamp}".encode()).hexdigest()  # REPRO101


def digest_environment():
    digest = hashlib.sha256()
    digest.update(os.environ.get("HOME", "").encode())  # REPRO101
    return digest.hexdigest()


def unsorted_set_key(values):
    seen = set(values)
    joined = ",".join(seen)
    return hashlib.sha256(joined.encode()).hexdigest()  # REPRO103


def sorted_set_key(values):
    seen = set(values)
    joined = ",".join(sorted(seen))  # sorted() launders iteration order
    return hashlib.sha256(joined.encode()).hexdigest()  # clean


def helper_clock():
    # Clean on its own: the taint only matters once it reaches a sink.
    return time.time()


def key_via_helper():
    stamp = helper_clock()  # taint flows through the helper's return
    return hashlib.sha256(f"key-{stamp}".encode()).hexdigest()  # REPRO101


def _state_payload():
    return {"captured_at": wall_clock()}  # REPRO102


def report(telemetry):
    telemetry.emit("heartbeat", ts=time.time())  # allowlisted sink: clean
