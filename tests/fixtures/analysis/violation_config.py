"""REPRO002 fixture: a *Config dataclass with a non-power-of-two table."""

from dataclasses import dataclass


@dataclass(frozen=True)
class SloppyConfig:
    table_entries: int = 1000  # REPRO002: not a power of two
    wm_rows: int = 48  # REPRO002
    good_entries: int = 4096  # fine
    log2_entries: int = 12  # fine: stores an exponent, not a size
    tag_bits: int = 11  # fine: not a size field
