"""REPRO005 fixture: a concrete BranchPredictor missing required members."""

from repro.core.base import BranchPredictor


class HalfBaked(BranchPredictor):  # REPRO005: missing name/storage_bits/reset
    def predict(self, pc: int) -> bool:
        return True

    def train(self, pc: int, taken: bool) -> None:
        pass
