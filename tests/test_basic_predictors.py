"""Tests for the trivial and table-based baseline predictors."""

import pytest

from repro.predictors import AlwaysTaken, Bimodal, GShare
from repro.sim import simulate
from repro.trace.records import Trace, TraceMetadata


def trace_of(events, name="t"):
    meta = TraceMetadata(name=name, category="SPEC", instruction_count=max(1, len(events) * 5))
    return Trace(meta, [pc for pc, _ in events], [t for _, t in events])


class TestAlwaysTaken:
    def test_always_predicts_taken(self):
        p = AlwaysTaken()
        assert p.predict(0x4)
        p.train(0x4, False)
        assert p.predict(0x4)

    def test_storage_is_free(self):
        assert AlwaysTaken().storage_bits() == 0


class TestBimodal:
    def test_learns_biased_branch(self):
        p = Bimodal(entries=1024)
        for _ in range(4):
            p.train(0x40, False)
        assert not p.predict(0x40)

    def test_hysteresis_tolerates_one_flip(self):
        p = Bimodal(entries=1024)
        for _ in range(4):
            p.train(0x40, True)
        p.train(0x40, False)
        assert p.predict(0x40)

    def test_counter_accessor(self):
        p = Bimodal(entries=1024)
        assert p.counter(0x40) == 2  # weakly taken initial state
        p.train(0x40, True)
        assert p.counter(0x40) == 3

    def test_aliasing_by_index_mask(self):
        p = Bimodal(entries=16)
        for _ in range(4):
            p.train(0x0, False)
        # pc 16 aliases to the same entry
        assert not p.predict(16)

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            Bimodal(entries=1000)

    def test_storage_bits(self):
        assert Bimodal(entries=1024, counter_bits=2).storage_bits() == 2048

    def test_beats_always_taken_on_not_taken_branch(self):
        events = [(0x40, False)] * 200
        bimodal = simulate(Bimodal(), trace_of(events))
        always = simulate(AlwaysTaken(), trace_of(events))
        assert bimodal.mispredictions < always.mispredictions


class TestGShare:
    def test_learns_history_pattern(self):
        """A branch alternating with its own last outcome is learnable."""
        p = GShare(entries=4096, history_bits=8)
        mispredicts = 0
        outcome = True
        for i in range(400):
            pred = p.predict(0x100)
            if pred != outcome:
                mispredicts += 1
            p.train(0x100, outcome)
            outcome = not outcome
        assert mispredicts < 40

    def test_history_register_shifts(self):
        p = GShare(history_bits=4)
        p.train(0x0, True)
        p.train(0x0, False)
        p.train(0x0, True)
        assert p.history == 0b101

    def test_history_bounded(self):
        p = GShare(history_bits=4)
        for _ in range(100):
            p.train(0x0, True)
        assert p.history == 0b1111

    def test_validation(self):
        with pytest.raises(ValueError):
            GShare(entries=100)
        with pytest.raises(ValueError):
            GShare(history_bits=0)

    def test_storage_bits(self):
        p = GShare(entries=1024, history_bits=10)
        assert p.storage_bits() == 1024 * 2 + 10

    def test_beats_bimodal_on_correlated_pattern(self):
        """gshare separates contexts a bimodal counter cannot."""
        events = []
        flag = True
        for i in range(2000):
            flag = (i // 2) % 2 == 0
            events.append((0x10, flag))
            events.append((0x20, flag))  # copies the previous branch
        gshare = simulate(GShare(), trace_of(events))
        bimodal = simulate(Bimodal(), trace_of(events))
        assert gshare.mispredictions < bimodal.mispredictions
