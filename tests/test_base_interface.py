"""Tests for the BranchPredictor interface contract and PredictorStats."""

import pytest

from repro.predictors import AlwaysTaken
from repro.predictors.base import BranchPredictor, PredictorStats


class TestPredictorStats:
    def test_counting(self):
        stats = PredictorStats()
        stats.count("T3")
        stats.count("T3")
        stats.count("base")
        assert stats.provider_hits == {"T3": 2, "base": 1}


class TestInterfaceDefaults:
    def test_default_provider_is_name(self):
        predictor = AlwaysTaken()
        assert predictor.provider == "always-taken"

    def test_default_reset_unsupported(self):
        class Minimal(BranchPredictor):
            def predict(self, pc):
                return True

            def train(self, pc, taken):
                return None

        with pytest.raises(NotImplementedError):
            Minimal().reset()

    def test_abstract_methods_enforced(self):
        with pytest.raises(TypeError):
            BranchPredictor()  # type: ignore[abstract]

    def test_energy_fallback_for_zero_storage(self):
        from repro.sim.energy import profile_of

        profile = profile_of(AlwaysTaken())
        assert profile.arrays == []
        assert profile.total_reads == 0
        assert profile.energy_units == 0
