"""Tests for the call-separated (variable-distance) correlation scene."""

import pytest

from repro.core import bf_neural_64kb
from repro.predictors import ScaledNeural
from repro.workloads import Program
from repro.workloads.cfg import CallSeparatedCorrelation, Machine, TraceBuilder


def make_scene(**kw):
    defaults = dict(leader_pc=0x40_0000, flag="call", callee_biased=60, short_biased=8)
    defaults.update(kw)
    return CallSeparatedCorrelation(**defaults)


class TestSceneShape:
    def test_taken_path_is_longer(self):
        scene = make_scene()
        for lead in (True, False):
            machine = Machine(1)
            machine.rng = type(machine.rng)(3 if lead else 4)
            out = TraceBuilder()
            # Force the leader by trying seeds until it matches.
            while True:
                machine_try = Machine(machine.rng.next_u64() or 1)
                out_try = TraceBuilder()
                scene.run(machine_try, out_try)
                if out_try.outcomes[0] == lead:
                    out = out_try
                    break
            if lead:
                assert len(out) > 60
            else:
                assert len(out) < 20

    def test_followers_track_leader(self):
        scene = make_scene()
        machine = Machine(9)
        out = TraceBuilder()
        for _ in range(30):
            scene.run(machine, out)
        events = list(zip(out.pcs, out.outcomes))
        leaders = [t for pc, t in events if pc == 0x40_0000]
        follower0 = [t for pc, t in events if pc == 0x40_0000 + 0xC00]
        assert follower0 == leaders

    def test_validation(self):
        with pytest.raises(ValueError):
            make_scene(callee_biased=8, short_biased=8)

    def test_approx_branches_reasonable(self):
        scene = make_scene()
        machine = Machine(5)
        out = TraceBuilder()
        for _ in range(50):
            scene.run(machine, out)
        per_activation = len(out) / 50
        assert abs(scene.approx_branches() - per_activation) < 15


class TestPredictability:
    def test_bf_neural_learns_variable_distance_correlation(self):
        """The RS holds one leader entry regardless of path; positional
        history distinguishes the two distances."""
        program = Program("call", "SPEC", [(make_scene(), 1.0)], seed=11)
        trace = program.generate(20_000)
        follower = 0x40_0000 + 0xC00
        predictor = bf_neural_64kb()
        seen = misses = 0
        for pc, taken in zip(trace.pcs, trace.outcomes):
            prediction = predictor.predict(pc)
            if pc == follower:
                seen += 1
                if seen > 150 and prediction != taken:
                    misses += 1
            predictor.train(pc, taken)
        assert misses < 0.2 * (seen - 150)

    def test_path_shape_leaks_to_short_history_too(self):
        """A *conditional* call leaks the leader's direction through the
        path shape itself: the window contents (callee body vs short
        path) identify the direction even when the leader bit is out of
        reach.  This is why the paper's reach argument is made with
        unconditional separation (our DistantCorrelation), while the
        conditional-call shape mainly exercises positional history."""
        program = Program("call", "SPEC", [(make_scene(), 1.0)], seed=11)
        trace = program.generate(20_000)
        follower = 0x40_0000 + 0xC00
        predictor = ScaledNeural(history_length=32)
        seen = misses = 0
        for pc, taken in zip(trace.pcs, trace.outcomes):
            prediction = predictor.predict(pc)
            if pc == follower:
                seen += 1
                if seen > 150 and prediction != taken:
                    misses += 1
            predictor.train(pc, taken)
        assert misses < 0.25 * (seen - 150)
