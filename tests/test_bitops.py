"""Unit and property tests for repro.common.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitops import fold_bits, hash_combine, is_power_of_two, mask, mix64


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 1
        assert mask(4) == 15
        assert mask(8) == 255

    def test_large_width(self):
        assert mask(64) == (1 << 64) - 1

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)

    @given(st.integers(min_value=0, max_value=256))
    def test_mask_is_all_ones(self, bits):
        value = mask(bits)
        assert value == (1 << bits) - 1
        assert value.bit_count() == bits


class TestIsPowerOfTwo:
    def test_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers(self):
        for value in (0, 3, 5, 6, 7, 9, 12, 100, -2, -8):
            assert not is_power_of_two(value)


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_fits_64_bits(self):
        for value in (0, 1, 2**63, 2**64 - 1, 2**80):
            assert 0 <= mix64(value) < 2**64

    def test_disperses_adjacent_inputs(self):
        outputs = {mix64(i) for i in range(1000)}
        assert len(outputs) == 1000

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_low_bits_change(self, value):
        # Adjacent inputs should differ in the low bits used as indices.
        assert (mix64(value) ^ mix64(value + 1)) & 0xFFFF != 0


class TestHashCombine:
    def test_order_sensitive(self):
        assert hash_combine(1, 2) != hash_combine(2, 1)

    def test_arity_sensitive(self):
        assert hash_combine(1) != hash_combine(1, 0)

    def test_deterministic(self):
        assert hash_combine(7, 8, 9) == hash_combine(7, 8, 9)

    def test_range(self):
        assert 0 <= hash_combine(1, 2, 3) < 2**64


class TestFoldBits:
    def test_identity_when_fits(self):
        assert fold_bits(0b1011, 4, 4) == 0b1011
        assert fold_bits(0b1011, 4, 8) == 0b1011

    def test_simple_fold(self):
        # 1011_0110 folded to 4 bits: 0110 ^ 1011 = 1101
        assert fold_bits(0b1011_0110, 8, 4) == 0b1101

    def test_masks_out_of_range_bits(self):
        # Bits beyond `width` must be ignored.
        assert fold_bits(0b1_0001, 4, 4) == 0b0001

    def test_zero(self):
        assert fold_bits(0, 100, 7) == 0

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            fold_bits(1, 4, 0)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            fold_bits(1, -1, 4)

    @given(
        st.integers(min_value=0, max_value=2**128 - 1),
        st.integers(min_value=1, max_value=128),
        st.integers(min_value=1, max_value=32),
    )
    def test_result_fits_target(self, value, width, target):
        assert 0 <= fold_bits(value, width, target) < (1 << target)

    @given(
        st.integers(min_value=0, max_value=2**64 - 1),
        st.integers(min_value=1, max_value=16),
    )
    def test_xor_homomorphism(self, value, target):
        """Folding distributes over XOR: fold(a^b) == fold(a)^fold(b)."""
        other = 0x5A5A_5A5A_5A5A_5A5A
        left = fold_bits(value ^ other, 64, target)
        right = fold_bits(value, 64, target) ^ fold_bits(other, 64, target)
        assert left == right
