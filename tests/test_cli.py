"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import _load_trace, _predictor_registry, build_parser, main


class TestRegistry:
    def test_all_entries_construct(self):
        for name, factory in _predictor_registry().items():
            predictor = factory()
            assert predictor.predict(0x40) in (True, False)

    def test_expected_names_present(self):
        registry = _predictor_registry()
        for name in ("bimodal", "gshare", "filter", "oh-snap", "tage10",
                     "bf-tage10", "bf-neural", "bf-neural-ahead"):
            assert name in registry


class TestLoadTrace:
    def test_suite_name(self):
        trace = _load_trace("FP1", 1000)
        assert trace.name == "FP1"
        assert len(trace) >= 1000

    def test_bfbp_file(self, tmp_path):
        from repro.trace.io import write_trace
        from repro.workloads import build_trace

        trace = build_trace("MM1", 800)
        path = tmp_path / "mm1.bfbp"
        write_trace(trace, path)
        loaded = _load_trace(str(path), None)
        assert loaded.pcs == trace.pcs

    def test_file_with_truncation(self, tmp_path):
        from repro.trace.io import write_trace
        from repro.workloads import build_trace

        trace = build_trace("MM1", 800)
        path = tmp_path / "mm1.bfbp"
        write_trace(trace, path)
        loaded = _load_trace(str(path), 100)
        assert len(loaded) == 100

    def test_unknown_spec(self):
        with pytest.raises(SystemExit):
            _load_trace("NOSUCH9", None)

    def test_interchange_file(self, tmp_path):
        from repro.workloads import build_trace, format_csv

        trace = build_trace("MM1", 400)
        path = tmp_path / "mm1.csv"
        path.write_text(format_csv(trace), encoding="utf-8")
        loaded = _load_trace(str(path), None)
        assert loaded.pcs == trace.pcs

    def test_manifest_entry_ref(self, tmp_path):
        manifest = tmp_path / "s.toml"
        manifest.write_text(
            '[suite]\nname = "s"\nversion = 1\n'
            '[[entry]]\nkind = "synthetic"\nname = "FP1"\nbranches = 600\n',
            encoding="utf-8",
        )
        loaded = _load_trace(f"@{manifest}#FP1", None)
        assert loaded.name == "FP1"
        assert len(loaded) >= 600

    def test_manifest_error_becomes_system_exit(self, tmp_path):
        manifest = tmp_path / "s.toml"
        manifest.write_text(
            '[suite]\nname = "s"\nversion = 1\n'
            '[[entry]]\nkind = "synthetic"\nname = "FP1"\n',
            encoding="utf-8",
        )
        with pytest.raises(SystemExit):
            _load_trace(f"@{manifest}#GHOST", None)


class TestSubcommands:
    def test_suite_lists_names(self, capsys):
        assert main(["suite", "--categories", "MM"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines() == ["MM1", "MM2", "MM3", "MM4", "MM5"]

    def test_generate_writes_files(self, tmp_path, capsys):
        code = main(
            ["generate", str(tmp_path), "--traces", "FP1", "--branches", "600"]
        )
        assert code == 0
        assert (tmp_path / "FP1.bfbp").exists()

    def test_stats_reports(self, capsys):
        assert main(["stats", "FP1", "--branches", "600"]) == 0
        out = capsys.readouterr().out
        assert "FP1" in out and "%" in out

    def test_simulate_runs(self, capsys):
        code = main(
            ["simulate", "FP1", "--predictors", "bimodal", "--branches", "600"]
        )
        assert code == 0
        assert "bimodal" in capsys.readouterr().out

    def test_simulate_unknown_predictor(self):
        with pytest.raises(SystemExit):
            main(["simulate", "FP1", "--predictors", "oracle9000"])

    def test_storage_lists_budgets(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "bf-neural" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestConvertCommand:
    def test_round_trip_through_cli(self, tmp_path, capsys):
        from repro.trace.io import write_trace
        from repro.workloads import build_trace

        trace = build_trace("FP1", 500)
        source = tmp_path / "fp1.bfbp"
        write_trace(trace, source)
        assert main(["convert", str(source), str(tmp_path / "fp1.bft")]) == 0
        assert main(["convert", str(tmp_path / "fp1.bft"),
                     str(tmp_path / "back.bfbp")]) == 0
        assert (tmp_path / "back.bfbp").read_bytes() == source.read_bytes()
        out = capsys.readouterr().out
        assert "branches" in out and "fingerprint" in out

    def test_malformed_input_exits(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("pc,taken\n1,0\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["convert", str(bad), str(tmp_path / "out.bfbp")])


class TestSuiteManifestCommand:
    def test_describes_manifest(self, capsys):
        from pathlib import Path

        demo = Path(__file__).resolve().parent.parent / "examples/suites/demo.toml"
        assert main(["suite", "--manifest", str(demo)]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert "DEMO_MIX" in out and "mix" in out

    def test_simulate_accepts_manifest_ref(self, capsys):
        from pathlib import Path

        demo = Path(__file__).resolve().parent.parent / "examples/suites/demo.toml"
        code = main(
            ["simulate", f"@{demo}#DEMO_MIX", "--predictors", "gshare"]
        )
        assert code == 0
        assert "gshare" in capsys.readouterr().out
