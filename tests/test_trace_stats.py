"""Tests for trace statistics (the Figure 2 analysis)."""

from repro.trace.records import Trace, TraceMetadata
from repro.trace.stats import compute_stats, recurrence_distances


def trace_of(events):
    meta = TraceMetadata(name="S", category="SPEC", instruction_count=max(1, len(events) * 5))
    return Trace(meta, [pc for pc, _ in events], [t for _, t in events])


class TestBranchProfiles:
    def test_biased_branch_detected(self):
        trace = trace_of([(4, True)] * 5 + [(8, False)] * 3)
        stats = compute_stats(trace)
        assert stats.profiles[4].is_biased
        assert stats.profiles[8].is_biased
        assert stats.biased_static_branches == 2

    def test_non_biased_branch_detected(self):
        trace = trace_of([(4, True), (4, False), (4, True)])
        stats = compute_stats(trace)
        assert not stats.profiles[4].is_biased
        assert stats.biased_static_branches == 0

    def test_bias_ratio(self):
        trace = trace_of([(4, True)] * 3 + [(4, False)])
        profile = compute_stats(trace).profiles[4]
        assert profile.bias_ratio == 0.75
        assert profile.taken_count == 3
        assert profile.not_taken_count == 1


class TestAggregates:
    def test_dynamic_fraction(self):
        # 6 executions of a biased branch, 2 of a non-biased one.
        trace = trace_of([(4, True)] * 6 + [(8, True), (8, False)])
        stats = compute_stats(trace)
        assert stats.dynamic_branches == 8
        assert stats.biased_dynamic_fraction == 6 / 8

    def test_static_fraction(self):
        trace = trace_of([(4, True), (8, True), (8, False)])
        stats = compute_stats(trace)
        assert stats.static_branches == 2
        assert stats.biased_static_fraction == 0.5

    def test_taken_fraction(self):
        trace = trace_of([(4, True), (8, False), (12, True), (16, True)])
        assert compute_stats(trace).taken_fraction == 0.75

    def test_empty_trace(self):
        stats = compute_stats(trace_of([]))
        assert stats.dynamic_branches == 0
        assert stats.biased_dynamic_fraction == 0.0
        assert stats.biased_static_fraction == 0.0


class TestRecurrenceDistances:
    def test_distances(self):
        trace = trace_of([(4, True), (8, True), (4, True), (8, True), (8, True)])
        assert recurrence_distances(trace, 4) == [2]
        assert recurrence_distances(trace, 8) == [2, 1]

    def test_absent_pc(self):
        trace = trace_of([(4, True)])
        assert recurrence_distances(trace, 999) == []


class TestSuiteBiasSpread:
    def test_suite_traces_have_spread(self):
        """Figure 2's premise: the biased fraction varies across traces."""
        from repro.workloads import build_trace

        fractions = {}
        for name in ("SPEC03", "SPEC02", "SERV3"):
            stats = compute_stats(build_trace(name, 12000))
            fractions[name] = stats.biased_dynamic_fraction
        assert fractions["SPEC02"] > fractions["SPEC03"]
        assert fractions["SERV3"] > fractions["SPEC03"]
        assert max(fractions.values()) - min(fractions.values()) > 0.1
