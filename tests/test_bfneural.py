"""Tests for the BF-Neural predictor (Algorithms 2 and 3)."""

import pytest

from repro.core.bfneural import BFNeural, BFNeuralConfig, quantize_distance
from repro.core.bst import BranchStatus
from repro.core.configs import bf_neural_32kb, bf_neural_64kb
from repro.sim import simulate
from repro.trace.records import Trace, TraceMetadata
from tests.test_neural_predictors import correlated_stream, follower_misses


def small_config(**overrides):
    defaults = dict(
        bst_entries=1024,
        bias_entries=256,
        wm_rows=256,
        ht=8,
        wrs_entries=4096,
        rs_depth=16,
        with_loop_predictor=False,
    )
    defaults.update(overrides)
    return BFNeuralConfig(**defaults)


class TestQuantizeDistance:
    def test_small_distances_exact(self):
        for d in range(4):
            assert quantize_distance(d) == d

    def test_monotone_nondecreasing(self):
        values = [quantize_distance(d) for d in range(1, 3000)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_nearby_distances_share_buckets(self):
        assert quantize_distance(1000) == quantize_distance(1010)

    def test_far_distances_differ(self):
        assert quantize_distance(30) != quantize_distance(300)


class TestPredictionPath:
    def test_unknown_branch_uses_default(self):
        p = BFNeural(small_config(default_prediction=True))
        assert p.predict(0x40)
        assert p.provider == "default"

    def test_biased_branch_predicted_from_bst(self):
        p = BFNeural(small_config())
        p.predict(0x40)
        p.train(0x40, False)
        assert not p.predict(0x40)
        assert p.provider == "bst"

    def test_non_biased_branch_uses_weights(self):
        p = BFNeural(small_config())
        p.predict(0x40)
        p.train(0x40, False)
        p.predict(0x40)
        p.train(0x40, True)  # now non-biased
        p.predict(0x40)
        assert p.provider in ("neural", "loop")

    def test_biased_branches_never_touch_rs(self):
        p = BFNeural(small_config())
        for _ in range(20):
            p.predict(0x40)
            p.train(0x40, True)
        assert len(p.rs) == 0

    def test_non_biased_branches_enter_rs(self):
        p = BFNeural(small_config())
        p.predict(0x40)
        p.train(0x40, True)
        p.predict(0x40)
        p.train(0x40, False)
        p.predict(0x40)
        p.train(0x40, True)
        assert p.rs.find(0x40) is not None


class TestLearning:
    def test_learns_biased_branch_instantly(self):
        p = BFNeural(small_config())
        p.predict(0x40)
        p.train(0x40, True)
        misses = 0
        for _ in range(100):
            if not p.predict(0x40):
                misses += 1
            p.train(0x40, True)
        assert misses == 0

    def test_captures_short_correlation(self):
        p = BFNeural(small_config())
        misses, seen = follower_misses(p, correlated_stream(6, activations=400), skip=200)
        assert misses < 0.15 * seen

    def test_captures_distant_correlation_beyond_unfiltered_reach(self):
        """The defining capability: biased filler is filtered out, so a
        correlation 33 branches back in raw history sits at RS depth 1."""
        p = BFNeural(small_config())
        misses, seen = follower_misses(p, correlated_stream(34, activations=400), skip=200)
        assert misses < 0.15 * seen

    def test_captures_very_distant_correlation(self):
        p = BFNeural(small_config(position_cap=2048))
        misses, seen = follower_misses(p, correlated_stream(300, activations=300), skip=150)
        assert misses < 0.2 * seen


class TestAblationFlags:
    def test_unfiltered_history_mode_misses_distant(self):
        config = small_config(filter_biased_history=False, use_rs=False)
        p = BFNeural(config)
        misses, seen = follower_misses(p, correlated_stream(80, activations=300), skip=150)
        assert misses > 0.25 * seen

    def test_filtered_history_without_rs_catches_biased_filler(self):
        config = small_config(filter_biased_history=True, use_rs=False)
        p = BFNeural(config)
        misses, seen = follower_misses(p, correlated_stream(80, activations=300), skip=150)
        assert misses < 0.15 * seen

    def test_rs_flag_controls_dedup(self):
        assert BFNeural(small_config(use_rs=True)).rs.dedup
        assert not BFNeural(small_config(use_rs=False)).rs.dedup


class TestLoopComponent:
    def test_loop_predictor_catches_long_constant_loop(self):
        config = small_config(with_loop_predictor=True, rs_depth=4, ht=4)
        p = BFNeural(config)
        trip = 40
        events = []
        for _ in range(50):
            for i in range(trip):
                events.append((0x800, i < trip - 1))
        meta = TraceMetadata(name="loop", category="SPEC", instruction_count=len(events) * 5)
        with_loop = simulate(p, Trace(meta, [e[0] for e in events], [e[1] for e in events]))
        no_loop = simulate(
            BFNeural(small_config(rs_depth=4, ht=4)),
            Trace(meta, [e[0] for e in events], [e[1] for e in events]),
        )
        assert with_loop.mispredictions <= no_loop.mispredictions


class TestTrainingRules:
    def test_weights_respect_width(self):
        config = small_config(weight_bits=6)
        p = BFNeural(config)
        events = correlated_stream(6, activations=300)
        for pc, taken in events:
            p.predict(pc)
            p.train(pc, taken)
        limit = (1 << 5) - 1
        assert all(-limit - 1 <= w <= limit for w in p._wb)
        assert all(-limit - 1 <= w <= limit for w in p._wrs)
        for row in p._wm:
            assert all(-limit - 1 <= w <= limit for w in row)

    def test_transition_to_non_biased_trains_weights(self):
        p = BFNeural(small_config())
        p.predict(0x40)
        p.train(0x40, True)
        before = sum(map(abs, p._wb))
        p.predict(0x40)
        p.train(0x40, False)  # mispredicted biased branch -> transition
        after = sum(map(abs, p._wb))
        assert p.bst.status(0x40) == BranchStatus.NON_BIASED
        assert after >= before

    def test_adaptive_theta_bounded_below(self):
        p = BFNeural(small_config(initial_theta=2))
        events = correlated_stream(6, activations=200)
        for pc, taken in events:
            p.predict(pc)
            p.train(pc, taken)
        assert p.theta >= 1


class TestConfigs:
    def test_64kb_budget(self):
        p = bf_neural_64kb()
        kb = p.storage_bits() / 8 / 1024
        assert 50 < kb < 75

    def test_32kb_budget(self):
        p = bf_neural_32kb()
        kb = p.storage_bits() / 8 / 1024
        assert 25 < kb < 40

    def test_32kb_worse_than_64kb(self):
        from repro.workloads import build_trace

        trace = build_trace("SPEC03", 15000)
        big = simulate(bf_neural_64kb(), trace)
        small = simulate(bf_neural_32kb(), trace)
        # Paper: 2.49 (64KB) vs 2.73 (32KB) — smaller must not be better
        # by more than noise.
        assert small.mpki > big.mpki * 0.95

    def test_invalid_stage(self):
        from repro.experiments.common import bf_neural_stage

        with pytest.raises(ValueError):
            bf_neural_stage(4)
