"""Tests for history rings and incrementally folded registers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.histories import (
    FoldedHistory,
    HistoryRing,
    MultiFoldedHistory,
    naive_fold,
)


class TestHistoryRing:
    def test_starts_empty(self):
        ring = HistoryRing(8)
        assert len(ring) == 0

    def test_push_and_at(self):
        ring = HistoryRing(4)
        ring.push(True)
        ring.push(False)
        ring.push(True)
        assert ring.at(0) == 1  # newest
        assert ring.at(1) == 0
        assert ring.at(2) == 1

    def test_eviction_returns_oldest(self):
        ring = HistoryRing(2)
        assert ring.push(True) == 0  # warming up
        assert ring.push(False) == 0
        assert ring.push(True) == 1  # evicts the first push
        assert ring.push(True) == 0  # evicts the second push

    def test_recent_bits_packing(self):
        ring = HistoryRing(8)
        for taken in (True, False, True):  # newest is True
            ring.push(taken)
        # bit 0 = newest (True), bit 1 = False, bit 2 = True
        assert ring.recent_bits(3) == 0b101

    def test_at_out_of_range(self):
        ring = HistoryRing(4)
        with pytest.raises(IndexError):
            ring.at(4)

    def test_recent_bits_bad_count(self):
        ring = HistoryRing(4)
        with pytest.raises(ValueError):
            ring.recent_bits(5)

    def test_clear(self):
        ring = HistoryRing(4)
        ring.push(True)
        ring.clear()
        assert len(ring) == 0
        assert ring.recent_bits(4) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            HistoryRing(0)


class TestFoldedHistory:
    @given(
        st.lists(st.booleans(), min_size=1, max_size=400),
        st.sampled_from([(5, 3), (8, 4), (13, 7), (3, 8), (64, 11), (1, 1), (7, 7), (142, 10)]),
    )
    @settings(max_examples=60)
    def test_matches_naive_fold(self, outcomes, shape):
        """The incremental fold must equal refolding the raw window."""
        length, width = shape
        ring = HistoryRing(512)
        fold = FoldedHistory(length, width)
        for taken in outcomes:
            bit = 1 if taken else 0
            outgoing = ring.at(length - 1) if len(ring) >= length else 0
            fold.update(bit, outgoing)
            ring.push(taken)
            assert fold.value == naive_fold(ring, length, width)

    def test_zero_length_is_constant(self):
        fold = FoldedHistory(0, 4)
        fold.update(1, 0)
        assert fold.value == 0

    def test_clear(self):
        fold = FoldedHistory(8, 4)
        fold.update(1, 0)
        assert fold.value != 0
        fold.clear()
        assert fold.value == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FoldedHistory(-1, 4)
        with pytest.raises(ValueError):
            FoldedHistory(8, 0)

    def test_value_stays_in_width(self):
        fold = FoldedHistory(13, 5)
        for i in range(200):
            fold.update(i & 1, (i >> 1) & 1)
            assert 0 <= fold.value < 32


class TestMultiFoldedHistory:
    def test_exact_lookup(self):
        multi = MultiFoldedHistory([4, 8, 16], width=6, ring_capacity=32)
        for taken in [True, False, True, True, False, True, False, False]:
            multi.push(taken)
        assert multi.exact(8) == naive_fold(multi.ring, 8, 6)

    def test_exact_missing_depth(self):
        multi = MultiFoldedHistory([4, 8], width=6, ring_capacity=32)
        with pytest.raises(KeyError):
            multi.exact(5)

    def test_folded_at_picks_largest_not_exceeding(self):
        multi = MultiFoldedHistory([4, 8, 16], width=6, ring_capacity=32)
        for i in range(20):
            multi.push(bool(i % 3))
        assert multi.folded_at(10) == multi.exact(8)
        assert multi.folded_at(16) == multi.exact(16)
        assert multi.folded_at(100) == multi.exact(16)

    def test_folded_at_below_smallest(self):
        multi = MultiFoldedHistory([4, 8], width=6, ring_capacity=32)
        multi.push(True)
        assert multi.folded_at(2) == 0

    def test_all_registers_consistent(self):
        depths = [4, 8, 12, 24, 48]
        multi = MultiFoldedHistory(depths, width=7, ring_capacity=64)
        import random

        rnd = random.Random(5)
        for _ in range(200):
            multi.push(bool(rnd.getrandbits(1)))
        for depth in depths:
            assert multi.exact(depth) == naive_fold(multi.ring, depth, 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiFoldedHistory([], width=4, ring_capacity=16)
        with pytest.raises(ValueError):
            MultiFoldedHistory([8, 4], width=4, ring_capacity=16)
        with pytest.raises(ValueError):
            MultiFoldedHistory([4, 4], width=4, ring_capacity=16)
        with pytest.raises(ValueError):
            MultiFoldedHistory([4, 32], width=4, ring_capacity=16)

    def test_clear(self):
        multi = MultiFoldedHistory([4], width=4, ring_capacity=8)
        multi.push(True)
        multi.clear()
        assert multi.exact(4) == 0
        assert len(multi.ring) == 0
