"""Tests for TAGE components, TAGE, and ISL-TAGE."""

import pytest

from repro.predictors.tage.components import FoldedIndexSet, TaggedTable
from repro.predictors.tage.isl import ISLTage
from repro.predictors.tage.tage import (
    ISL_15_TABLE_LENGTHS,
    Tage,
    TageConfig,
    geometric_lengths,
)
from repro.sim import simulate
from repro.trace.records import Trace, TraceMetadata


def trace_of(events):
    meta = TraceMetadata(name="t", category="SPEC", instruction_count=max(1, len(events) * 5))
    return Trace(meta, [pc for pc, _ in events], [t for _, t in events])


class TestGeometricLengths:
    def test_monotone_increasing(self):
        for n in range(4, 16):
            lengths = geometric_lengths(n)
            assert lengths == sorted(lengths)
            assert len(set(lengths)) == n

    def test_15_table_matches_paper(self):
        assert geometric_lengths(15) == ISL_15_TABLE_LENGTHS

    def test_10_table_max_is_195(self):
        assert geometric_lengths(10)[-1] == 195

    def test_starts_at_l1(self):
        assert geometric_lengths(8)[0] == 3

    def test_custom_lmax(self):
        lengths = geometric_lengths(5, lmax=100)
        assert lengths[-1] == 100

    def test_unknown_count_needs_lmax(self):
        with pytest.raises(ValueError):
            geometric_lengths(20)
        assert geometric_lengths(20, lmax=2000)[-1] == 2000

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            geometric_lengths(0)


class TestTaggedTable:
    def test_allocation_sets_weak_counter(self):
        table = TaggedTable(log2_entries=4, tag_bits=8, history_length=10)
        table.allocate(3, tag=0x5A, taken=True)
        assert table.tag[3] == 0x5A
        assert table.ctr[3] == 0
        assert table.predict_at(3)
        table.allocate(4, tag=0x5B, taken=False)
        assert table.ctr[4] == -1
        assert not table.predict_at(4)

    def test_counter_saturation(self):
        table = TaggedTable(log2_entries=4, tag_bits=8, history_length=10)
        for _ in range(10):
            table.update_ctr(0, True)
        assert table.ctr[0] == 3
        for _ in range(20):
            table.update_ctr(0, False)
        assert table.ctr[0] == -4

    def test_weak_states(self):
        table = TaggedTable(log2_entries=4, tag_bits=8, history_length=10)
        table.ctr[0] = 0
        assert table.is_weak(0)
        table.ctr[0] = -1
        assert table.is_weak(0)
        table.ctr[0] = 2
        assert not table.is_weak(0)

    def test_useful_bits(self):
        table = TaggedTable(log2_entries=4, tag_bits=8, history_length=10)
        table.update_useful(0, True)
        table.update_useful(0, True)
        assert table.useful[0] == 2
        table.age_useful()
        assert table.useful[0] == 1

    def test_index_and_tag_within_range(self):
        table = TaggedTable(log2_entries=6, tag_bits=9, history_length=10)
        for pc in range(0, 4000, 37):
            assert 0 <= table.index_of(pc, 0x15, 0x3) < 64
            assert 0 <= table.tag_of(pc, 0x1F, 0xF) < 512

    def test_storage_bits(self):
        table = TaggedTable(log2_entries=4, tag_bits=8, history_length=10)
        assert table.storage_bits() == 16 * (3 + 8 + 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            TaggedTable(0, 8, 10)
        with pytest.raises(ValueError):
            TaggedTable(4, 0, 10)


class TestFoldedIndexSet:
    def test_updates_all_folds(self):
        folds = FoldedIndexSet(history_length=20, index_bits=10, tag_bits=8)
        folds.update(1, 0)
        assert folds.index_fold.value != 0 or folds.tag_fold_1.value != 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FoldedIndexSet(0, 10, 8)


class TestTageConfig:
    def test_defaults(self):
        config = TageConfig()
        assert config.num_tables == 10
        assert len(config.history_lengths) == 10

    def test_mismatched_lists_rejected(self):
        with pytest.raises(ValueError):
            TageConfig(
                num_tables=4,
                history_lengths=[3, 8],
                log2_entries=[10] * 4,
                tag_bits=[8] * 4,
            )

    def test_non_increasing_lengths_rejected(self):
        with pytest.raises(ValueError):
            TageConfig(
                num_tables=2,
                history_lengths=[8, 3],
                log2_entries=[10, 10],
                tag_bits=[8, 8],
            )


class TestTageBehaviour:
    def test_learns_biased_branch(self):
        p = Tage(TageConfig.for_tables(4))
        for _ in range(10):
            p.predict(0x40)
            p.train(0x40, True)
        assert p.predict(0x40)

    def test_learns_alternating_pattern(self):
        p = Tage(TageConfig.for_tables(4))
        misses = 0
        outcome = True
        for i in range(300):
            if p.predict(0x40) != outcome and i > 100:
                misses += 1
            p.train(0x40, outcome)
            outcome = not outcome
        assert misses < 20

    def test_provider_attribution(self):
        p = Tage(TageConfig.for_tables(4))
        p.predict(0x40)
        assert p.provider == "base"
        assert p.provider_table == 0

    def test_tagged_provider_emerges(self):
        p = Tage(TageConfig.for_tables(4))
        outcome = True
        providers = set()
        for i in range(500):
            p.predict(0x40)
            providers.add(p.provider)
            p.train(0x40, outcome)
            outcome = not outcome
        assert any(name.startswith("T") for name in providers)

    def test_captures_correlation_within_longest_history(self):
        from tests.test_neural_predictors import correlated_stream, follower_misses

        p = Tage(TageConfig.for_tables(10))  # max history 195
        misses, seen = follower_misses(p, correlated_stream(60, activations=400), skip=200)
        assert misses < 0.15 * seen

    def test_misses_correlation_beyond_longest_history(self):
        from tests.test_neural_predictors import correlated_stream, follower_misses

        p = Tage(TageConfig.for_tables(4))  # max history 26
        misses, seen = follower_misses(p, correlated_stream(60, activations=300), skip=100)
        assert misses > 0.3 * seen

    def test_storage_accounting(self):
        p = Tage(TageConfig.for_tables(10))
        assert 40 * 1024 < p.storage_bits() / 8 < 70 * 1024


class TestISLTage:
    def test_loop_component_captures_constant_loop(self):
        """A loop too long for the history register is caught by the LC."""
        p = ISLTage(TageConfig.for_tables(4))
        trip = 60
        events = []
        for _ in range(60):
            for i in range(trip):
                events.append((0x800, i < trip - 1))
        result = simulate(p, trace_of(events))
        plain = simulate(Tage(TageConfig.for_tables(4)), trace_of(events))
        assert result.mispredictions <= plain.mispredictions

    def test_provider_can_be_loop(self):
        p = ISLTage(TageConfig.for_tables(4))
        trip = 50
        for _ in range(30):
            for i in range(trip):
                p.predict(0x800)
                p.train(0x800, i < trip - 1)
        providers = set()
        for i in range(trip):
            p.predict(0x800)
            providers.add(p.provider)
            p.train(0x800, i < trip - 1)
        assert "loop" in providers

    def test_components_can_be_disabled(self):
        p = ISLTage(
            TageConfig.for_tables(4),
            with_loop_predictor=False,
            with_statistical_corrector=False,
        )
        assert p.loop is None
        p.predict(0x10)
        p.train(0x10, True)

    def test_storage_includes_components(self):
        with_all = ISLTage(TageConfig.for_tables(4))
        without = ISLTage(
            TageConfig.for_tables(4),
            with_loop_predictor=False,
            with_statistical_corrector=False,
        )
        assert with_all.storage_bits() > without.storage_bits()
