"""Setuptools shim.

The modern PEP 660 editable-install path needs the ``wheel`` package;
this shim keeps ``pip install -e .`` working on minimal environments via
the legacy ``setup.py develop`` route.  All metadata lives in
``pyproject.toml``-adjacent arguments below.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Bias-Free Branch Predictor (Gope & Lipasti, MICRO 2014) — "
        "full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
