#!/usr/bin/env python3
"""Quickstart: build a trace, run three predictors, print MPKI.

Usage::

    python examples/quickstart.py [TRACE_NAME] [BRANCHES]

Defaults to 20 000 branches of the synthetic SPEC02 trace.
"""

import sys

from repro.core import bf_neural_64kb
from repro.predictors import ScaledNeural, Tage, TageConfig
from repro.sim import simulate
from repro.workloads import build_trace


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "SPEC02"
    branches = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    print(f"generating trace {name} ({branches} branches)...")
    trace = build_trace(name, branches)
    print(f"  {len(trace)} branches, {trace.instruction_count} instructions, "
          f"{len(trace.static_branches())} static branches\n")

    predictors = [
        ("OH-SNAP (neural baseline)", ScaledNeural()),
        ("TAGE, 10 tagged tables", Tage(TageConfig.for_tables(10))),
        ("BF-Neural, 64 KB", bf_neural_64kb()),
    ]
    print(f"{'predictor':30s} {'MPKI':>8s} {'mispredict rate':>16s}")
    for label, predictor in predictors:
        result = simulate(predictor, trace)
        print(f"{label:30s} {result.mpki:8.3f} {result.misprediction_rate:15.2%}")


if __name__ == "__main__":
    main()
