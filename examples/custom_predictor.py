#!/usr/bin/env python3
"""Extend the framework: write a new predictor and evaluate it.

Implements a tiny *bias-filtered gshare* against the ``BranchPredictor``
interface: a gshare whose history register is fed through the library's
Branch Status Table, so only non-biased branches shift into the history
— the paper's filtering idea bolted onto the simplest correlating
predictor.  The example then races it against plain gshare on a few
suite traces.

This is the template for any downstream predictor: implement
``predict``/``train`` (commit order, strict alternation), optionally
``storage_bits``, and every simulator/experiment facility works.
Implementing ``_state_payload``/``_restore_payload`` (the snapshot
protocol of ``docs/state.md``) additionally makes the predictor
checkpointable, so campaigns can resume it mid-trace.
"""

from repro.common.bitops import mask
from repro.core import BranchStatusTable
from repro.predictors import BranchPredictor, GShare
from repro.sim import simulate
from repro.workloads import build_trace


class BiasFilteredGShare(BranchPredictor):
    """gshare over a bias-free global history register."""

    name = "bf-gshare"

    def __init__(self, entries: int = 65536, history_bits: int = 16) -> None:
        self.entries = entries
        self.history_bits = history_bits
        self._table = [2] * entries
        self._history = 0
        self.bst = BranchStatusTable(entries=8192)

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        bias = self.bst.bias_prediction(pc)
        if bias is not None:
            return bias
        return self._table[self._index(pc)] >= 2

    def train(self, pc: int, taken: bool) -> None:
        if self.bst.bias_prediction(pc) is None:
            index = self._index(pc)
            value = self._table[index]
            if taken and value < 3:
                self._table[index] = value + 1
            elif not taken and value > 0:
                self._table[index] = value - 1
        self.bst.observe(pc, taken)
        # Only non-biased branches enter the history register.
        if self.bst.is_non_biased(pc):
            self._history = ((self._history << 1) | int(taken)) & mask(
                self.history_bits
            )

    def storage_bits(self) -> int:
        return self.entries * 2 + self.history_bits + self.bst.storage_bits()

    def reset(self) -> None:
        self.__init__(self.entries, self.history_bits)

    def _state_payload(self) -> dict:
        return {
            "table": list(self._table),
            "history": self._history,
            "bst": self.bst.snapshot(),
        }

    def _restore_payload(self, payload: dict) -> None:
        self._table = [int(v) for v in payload["table"]]
        self._history = int(payload["history"]) & mask(self.history_bits)
        self.bst.restore(payload["bst"])


def main() -> None:
    print(f"{'trace':8s} {'gshare MPKI':>12s} {'bf-gshare MPKI':>15s}")
    for name in ("SPEC02", "SPEC08", "INT1", "FP1"):
        trace = build_trace(name, 20_000)
        plain = simulate(GShare(), trace)
        filtered = simulate(BiasFilteredGShare(), trace)
        print(f"{name:8s} {plain.mpki:12.3f} {filtered.mpki:15.3f}")


if __name__ == "__main__":
    main()
