#!/usr/bin/env python3
"""Compare every implemented predictor family on a workload category.

Runs the whole predictor zoo — from always-taken to BF-TAGE — on the
traces of one category and prints an MPKI leaderboard plus each
predictor's modelled storage budget.

Usage::

    python examples/compare_predictors.py [CATEGORY] [BRANCHES]

Categories: SPEC, FP, INT, MM, SERV (default INT, 15 000 branches).
"""

import sys

from repro.core import BFTage, BFTageConfig, bf_neural_64kb
from repro.predictors import (
    AlwaysTaken,
    Bimodal,
    GShare,
    GlobalPerceptron,
    ISLTage,
    ScaledNeural,
    Tage,
    TageConfig,
)
from repro.sim import aggregate_mpki, evaluate_one
from repro.workloads import build_trace, trace_names


def main() -> None:
    category = sys.argv[1] if len(sys.argv) > 1 else "INT"
    branches = int(sys.argv[2]) if len(sys.argv) > 2 else 15_000

    names = trace_names([category])
    print(f"generating {len(names)} {category} traces x {branches} branches...")
    traces = [build_trace(name, branches) for name in names]

    contenders = [
        ("always-taken", AlwaysTaken),
        ("bimodal 16K", Bimodal),
        ("gshare 64K", GShare),
        ("perceptron h=32", lambda: GlobalPerceptron(rows=512, history_length=32)),
        ("oh-snap h=128", ScaledNeural),
        ("tage x10", lambda: Tage(TageConfig.for_tables(10))),
        ("isl-tage x10", lambda: ISLTage(TageConfig.for_tables(10))),
        ("bf-tage x10", lambda: BFTage(BFTageConfig.for_tables(10))),
        ("bf-neural 64KB", bf_neural_64kb),
    ]

    rows = []
    for label, factory in contenders:
        results = evaluate_one(factory, traces)
        rows.append((label, aggregate_mpki(results), factory().storage_bits() // 8192))
    rows.sort(key=lambda row: row[1])

    print(f"\n{'predictor':18s} {'avg MPKI':>9s} {'~KB':>5s}")
    for label, mpki, kb in rows:
        print(f"{label:18s} {mpki:9.3f} {kb:5d}")


if __name__ == "__main__":
    main()
