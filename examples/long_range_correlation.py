#!/usr/bin/env python3
"""Demonstrate the paper's core mechanism on a hand-built workload.

Builds a custom program around a single long-range correlation: a leader
branch decides a flag, ~300 mostly-biased branches execute, then three
follower branches read the flag.  The sweep shows who can reach it:

* an unfiltered-history neural predictor (OH-SNAP, 128-deep) cannot,
* a 10-table conventional TAGE (195-deep raw history) barely can,
* BF-Neural reaches it with a recency stack of depth 48, because after
  bias filtering and deduplication the leader sits 4 entries deep.

Usage::

    python examples/long_range_correlation.py [RAW_DISTANCE] [BRANCHES]
"""

import sys

from repro.core import BFTage, BFTageConfig, bf_neural_64kb
from repro.predictors import ScaledNeural, Tage, TageConfig
from repro.workloads import DistantCorrelation, Program


def build_workload(raw_distance: int) -> Program:
    biased = raw_distance - 12  # 4 patterned filler pcs x 3 repeats
    base = 0x40_0000
    scene = DistantCorrelation(
        leader_pc=base,
        flag="demo",
        biased_filler=biased,
        nonbiased_filler_pcs=[base + 0x800 + 4 * i for i in range(4)],
        filler_repeats=3,
        follower_pcs=[base + 0xC00 + 4 * i for i in range(3)],
        pre_pad=raw_distance // 2,
        pre_filler_pcs=[base + 0x1000 + 4 * i for i in range(4)],
    )
    return Program("demo", "SPEC", [(scene, 1.0)], seed=1234)


def follower_accuracy(predictor, trace, follower_pc: int) -> float:
    seen = misses = 0
    for pc, taken in zip(trace.pcs, trace.outcomes):
        prediction = predictor.predict(pc)
        if pc == follower_pc:
            seen += 1
            if seen > 50 and prediction != taken:  # skip warmup
                misses += 1
        predictor.train(pc, taken)
    return 1.0 - misses / max(1, seen - 50)


def main() -> None:
    raw_distance = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    branches = int(sys.argv[2]) if len(sys.argv) > 2 else 120_000
    program = build_workload(raw_distance)
    trace = program.generate(branches)
    follower_pc = 0x40_0000 + 0xC00

    print(f"correlation at raw distance ~{raw_distance} branches "
          f"({len(trace)} branch trace)\n")
    contenders = [
        ("oh-snap (128 unfiltered)", ScaledNeural()),
        ("tage x10 (raw histories to 195)", Tage(TageConfig.for_tables(10))),
        ("tage x15 (raw histories to 1930)", Tage(TageConfig.for_tables(15))),
        ("bf-tage x10 (compressed to 142)", BFTage(BFTageConfig.for_tables(10))),
        ("bf-neural (RS depth 48)", bf_neural_64kb()),
    ]
    print(f"{'predictor':34s} {'follower accuracy':>18s}")
    for label, predictor in contenders:
        accuracy = follower_accuracy(predictor, trace, follower_pc)
        print(f"{label:34s} {accuracy:17.1%}")


if __name__ == "__main__":
    main()
