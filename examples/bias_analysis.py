#!/usr/bin/env python3
"""Analyze branch bias: oracle classification vs the online BST.

For each selected trace this example compares

* the *oracle* view (a static branch is biased iff it resolved one way
  for the whole trace — what Figure 2 plots), with
* the *online* Branch Status Table view at the end of the run, for the
  2-bit deterministic FSM and the probabilistic 3-bit variant.

It also reports how many dynamic predictions the BST itself resolved
(branches predicted as biased, never consuming predictor-table energy) —
the efficiency argument behind bias-free prediction.

Usage::

    python examples/bias_analysis.py [TRACE ...]
"""

import sys

from repro.core import BranchStatus, BranchStatusTable
from repro.trace.stats import compute_stats
from repro.workloads import build_trace


def analyze(name: str) -> None:
    trace = build_trace(name, 25_000)
    oracle = compute_stats(trace)

    deterministic = BranchStatusTable(entries=16384)
    probabilistic = BranchStatusTable(entries=16384, probabilistic=True)
    bst_resolved = 0
    for pc, taken in zip(trace.pcs, trace.outcomes):
        if deterministic.bias_prediction(pc) is not None:
            bst_resolved += 1
        deterministic.observe(pc, taken)
        probabilistic.observe(pc, taken)

    def online_biased_fraction(bst: BranchStatusTable) -> float:
        biased = total = 0
        for pc in trace.static_branches():
            status = bst.status(pc)
            if status == BranchStatus.NOT_FOUND:
                continue
            total += 1
            if status in (BranchStatus.TAKEN, BranchStatus.NOT_TAKEN):
                biased += 1
        return biased / total if total else 0.0

    print(f"== {name}")
    print(f"  static branches:            {oracle.static_branches}")
    print(f"  oracle biased (static):     {oracle.biased_static_fraction:6.1%}")
    print(f"  oracle biased (dynamic):    {oracle.biased_dynamic_fraction:6.1%}")
    print(f"  BST 2-bit biased (static):  {online_biased_fraction(deterministic):6.1%}")
    print(f"  BST 3-bit prob. (static):   {online_biased_fraction(probabilistic):6.1%}")
    print(f"  predictions resolved by BST: {bst_resolved / len(trace):6.1%}\n")


def main() -> None:
    names = sys.argv[1:] or ["SPEC02", "SPEC03", "SERV3", "FP1"]
    for name in names:
        analyze(name)


if __name__ == "__main__":
    main()
