"""Predictor throughput benches: branches simulated per second.

Not a paper artifact, but the number that governs how large a suite the
pure-Python framework can evaluate; regressions here make the figure
campaigns impractical.
"""

import pytest

from repro.core import BFTage, BFTageConfig, bf_neural_64kb
from repro.predictors import Bimodal, GShare, ISLTage, ScaledNeural, Tage, TageConfig
from repro.sim import simulate

CONTENDERS = {
    "bimodal": Bimodal,
    "gshare": GShare,
    "oh-snap": ScaledNeural,
    "tage10": lambda: Tage(TageConfig.for_tables(10)),
    "isl-tage10": lambda: ISLTage(TageConfig.for_tables(10)),
    "bf-neural": bf_neural_64kb,
    "bf-tage10": lambda: BFTage(BFTageConfig.for_tables(10)),
}


@pytest.mark.parametrize("name", list(CONTENDERS), ids=list(CONTENDERS))
def test_predictor_throughput(benchmark, small_trace, name):
    factory = CONTENDERS[name]
    result = benchmark.pedantic(
        lambda: simulate(factory(), small_trace), rounds=1, iterations=1
    )
    benchmark.extra_info["mpki"] = round(result.mpki, 3)
    benchmark.extra_info["branches"] = len(small_trace)
    assert result.branches == len(small_trace)
