"""Predictor throughput benches: branches simulated per second.

Not a paper artifact, but the number that governs how large a suite the
pure-Python framework can evaluate; regressions here make the figure
campaigns impractical.  Each run appends its numbers to
``BENCH_throughput.json`` at the repo root, keyed by commit, so the
throughput trajectory across the PR stack stays inspectable.

Two families run here: the scalar reference loop over the standard
contenders, and the vectorized batch kernel (``repro.sim.batchkernel``)
over every ported predictor — the latter asserts both bit-identity
against the scalar run and its contracted speedup floor.  The final
test is the regression gate: each (predictor, kernel) row is compared
against the previous commit's row in the trajectory file, and a >20%
events/s drop warns by default or fails under
``REPRO_BENCH_ENFORCE=1`` (the trajectory mixes machines, so hard
enforcement is opt-in for pinned hardware).
"""

import json
import os
import subprocess
import time
import warnings
from pathlib import Path

import pytest

from repro.core import BFNeural, BFTage, BFTageConfig, bf_neural_64kb
from repro.predictors import Bimodal, GShare, ISLTage, ScaledNeural, Tage, TageConfig
from repro.predictors.perceptron import GlobalPerceptron
from repro.sim import simulate
from repro.sim.batchkernel import simulate_batch

CONTENDERS = {
    "bimodal": Bimodal,
    "gshare": GShare,
    "oh-snap": ScaledNeural,
    "tage10": lambda: Tage(TageConfig.for_tables(10)),
    "isl-tage10": lambda: ISLTage(TageConfig.for_tables(10)),
    "bf-neural": bf_neural_64kb,
    "bf-tage10": lambda: BFTage(BFTageConfig.for_tables(10)),
}

#: Predictors ported to the batch kernel, with the speedup floor each
#: one contracts over the scalar loop on a warm plan cache.  Bimodal
#: and gshare are pure gather/scatter (the ISSUE's >=10x targets);
#: perceptron and BF-Neural keep a sequential python segment (the
#: weight-update chain), so their floors are conservative.
VEC_CONTENDERS = {
    "bimodal": (Bimodal, 10.0),
    "gshare": (GShare, 10.0),
    "perceptron": (lambda: GlobalPerceptron(1024, 64), 1.5),
    "bf-neural": (BFNeural, 3.0),
}

#: Fractional events/s drop vs the previous commit that trips the gate.
REGRESSION_THRESHOLD = 0.20

_REPO_ROOT = Path(__file__).resolve().parent.parent
_TRAJECTORY_PATH = _REPO_ROOT / "BENCH_throughput.json"
_RESULTS: list[dict] = []


def _current_commit() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=_REPO_ROOT,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return proc.stdout.strip() or "unknown"


@pytest.fixture(scope="module", autouse=True)
def _persist_trajectory():
    """Replace this commit's entries in the trajectory file at teardown."""
    yield
    if not _RESULTS:
        return
    commit = _current_commit()
    try:
        history = json.loads(_TRAJECTORY_PATH.read_text())
    except (OSError, ValueError):
        history = []
    if not isinstance(history, list):
        history = []
    history = [row for row in history if row.get("commit") != commit]
    for row in _RESULTS:
        history.append({"commit": commit, **row})
    _TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


@pytest.mark.parametrize("name", list(CONTENDERS), ids=list(CONTENDERS))
def test_predictor_throughput(benchmark, small_trace, name):
    factory = CONTENDERS[name]
    result = benchmark.pedantic(
        lambda: simulate(factory(), small_trace), rounds=1, iterations=1
    )
    elapsed = benchmark.stats.stats.min
    events_per_s = round(len(small_trace) / elapsed, 1) if elapsed > 0 else 0.0
    benchmark.extra_info["mpki"] = round(result.mpki, 3)
    benchmark.extra_info["branches"] = len(small_trace)
    benchmark.extra_info["events_per_s"] = events_per_s
    _RESULTS.append(
        {
            "predictor": name,
            "mpki": round(result.mpki, 3),
            "events_per_s": events_per_s,
            "branches": len(small_trace),
        }
    )
    assert result.branches == len(small_trace)


@pytest.fixture(scope="module")
def vec_trace():
    """A larger trace for the vectorized benches: the batch kernel's
    per-call overhead (plan construction, array staging) amortizes over
    trace length, so the speedup contract is stated at a realistic
    working size rather than the 6k-branch scalar bench budget."""
    from repro.workloads import build_trace

    return build_trace("SPEC03", 40_000)


@pytest.mark.vectorized
@pytest.mark.parametrize("name", list(VEC_CONTENDERS), ids=list(VEC_CONTENDERS))
def test_vectorized_throughput(benchmark, vec_trace, name):
    """Batch-kernel throughput: bit-identical to scalar, and fast.

    The scalar twin runs once inline for the speedup denominator (same
    trace, same process, same thermal state); the vectorized side gets
    one warmup round so the measured number reflects a warm plan cache,
    which is the steady state of any campaign (one plan per trace).
    """
    factory, min_speedup = VEC_CONTENDERS[name]

    scalar = factory()
    started = time.perf_counter()
    scalar_result = simulate(scalar, vec_trace)
    scalar_elapsed = time.perf_counter() - started

    result = benchmark.pedantic(
        lambda: simulate_batch(factory(), vec_trace, kernel="vectorized"),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    elapsed = benchmark.stats.stats.min
    events_per_s = round(len(vec_trace) / elapsed, 1) if elapsed > 0 else 0.0
    speedup = scalar_elapsed / elapsed if elapsed > 0 else float("inf")

    assert result.mispredictions == scalar_result.mispredictions
    assert result.mpki == scalar_result.mpki

    benchmark.extra_info["events_per_s"] = events_per_s
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 1)
    _RESULTS.append(
        {
            "predictor": name,
            "kernel": "vectorized",
            "mpki": round(result.mpki, 3),
            "events_per_s": events_per_s,
            "branches": len(vec_trace),
            "speedup_vs_scalar": round(speedup, 1),
        }
    )
    assert speedup >= min_speedup, (
        f"{name}: vectorized kernel {speedup:.1f}x vs scalar "
        f"(contract is >= {min_speedup}x)"
    )


def _previous_commit_rows() -> tuple[str, dict]:
    """The trajectory rows of the newest commit that is not HEAD.

    Rows append in run order, so the last non-HEAD commit seen is the
    predecessor; its rows key by (predictor, kernel) with scalar as the
    implicit kernel of pre-batch-kernel history.
    """
    try:
        history = json.loads(_TRAJECTORY_PATH.read_text())
    except (OSError, ValueError):
        return "", {}
    if not isinstance(history, list):
        return "", {}
    current = _current_commit()
    previous = ""
    for row in history:
        commit = row.get("commit")
        if commit and commit != current:
            previous = commit
    if not previous:
        return "", {}
    rows = {
        (row.get("predictor"), row.get("kernel", "scalar")): row
        for row in history
        if row.get("commit") == previous
    }
    return previous, rows


def test_throughput_regression_gate():
    """Flag >20% events/s drops against the previous commit's rows.

    Advisory by default — the trajectory file travels with the repo and
    mixes host machines, so a raw comparison across commits can misfire
    on slower hardware.  Each regression is emitted as a warning
    (visible in pytest's summary); set ``REPRO_BENCH_ENFORCE=1`` on a
    pinned-hardware CI runner to turn the gate into a hard failure.
    """
    if not _RESULTS:
        pytest.skip("no throughput rows collected this run")
    previous, baseline = _previous_commit_rows()
    if not baseline:
        pytest.skip("no previous-commit rows in the trajectory file")
    regressions = []
    for row in _RESULTS:
        key = (row["predictor"], row.get("kernel", "scalar"))
        before = baseline.get(key)
        if before is None or not before.get("events_per_s"):
            continue
        drop = 1.0 - row["events_per_s"] / before["events_per_s"]
        if drop > REGRESSION_THRESHOLD:
            regressions.append(
                f"{key[0]} ({key[1]}): {before['events_per_s']:.0f} -> "
                f"{row['events_per_s']:.0f} events/s "
                f"({drop:.0%} drop vs {previous})"
            )
    if not regressions:
        return
    message = "throughput regressions vs previous commit:\n  " + "\n  ".join(
        regressions
    )
    if os.environ.get("REPRO_BENCH_ENFORCE"):
        pytest.fail(message)
    warnings.warn(message, stacklevel=1)
