"""Predictor throughput benches: branches simulated per second.

Not a paper artifact, but the number that governs how large a suite the
pure-Python framework can evaluate; regressions here make the figure
campaigns impractical.  Each run appends its numbers to
``BENCH_throughput.json`` at the repo root, keyed by commit, so the
throughput trajectory across the PR stack stays inspectable.
"""

import json
import subprocess
from pathlib import Path

import pytest

from repro.core import BFTage, BFTageConfig, bf_neural_64kb
from repro.predictors import Bimodal, GShare, ISLTage, ScaledNeural, Tage, TageConfig
from repro.sim import simulate

CONTENDERS = {
    "bimodal": Bimodal,
    "gshare": GShare,
    "oh-snap": ScaledNeural,
    "tage10": lambda: Tage(TageConfig.for_tables(10)),
    "isl-tage10": lambda: ISLTage(TageConfig.for_tables(10)),
    "bf-neural": bf_neural_64kb,
    "bf-tage10": lambda: BFTage(BFTageConfig.for_tables(10)),
}

_REPO_ROOT = Path(__file__).resolve().parent.parent
_TRAJECTORY_PATH = _REPO_ROOT / "BENCH_throughput.json"
_RESULTS: list[dict] = []


def _current_commit() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=_REPO_ROOT,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return proc.stdout.strip() or "unknown"


@pytest.fixture(scope="module", autouse=True)
def _persist_trajectory():
    """Replace this commit's entries in the trajectory file at teardown."""
    yield
    if not _RESULTS:
        return
    commit = _current_commit()
    try:
        history = json.loads(_TRAJECTORY_PATH.read_text())
    except (OSError, ValueError):
        history = []
    if not isinstance(history, list):
        history = []
    history = [row for row in history if row.get("commit") != commit]
    for row in _RESULTS:
        history.append({"commit": commit, **row})
    _TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


@pytest.mark.parametrize("name", list(CONTENDERS), ids=list(CONTENDERS))
def test_predictor_throughput(benchmark, small_trace, name):
    factory = CONTENDERS[name]
    result = benchmark.pedantic(
        lambda: simulate(factory(), small_trace), rounds=1, iterations=1
    )
    elapsed = benchmark.stats.stats.min
    events_per_s = round(len(small_trace) / elapsed, 1) if elapsed > 0 else 0.0
    benchmark.extra_info["mpki"] = round(result.mpki, 3)
    benchmark.extra_info["branches"] = len(small_trace)
    benchmark.extra_info["events_per_s"] = events_per_s
    _RESULTS.append(
        {
            "predictor": name,
            "mpki": round(result.mpki, 3),
            "events_per_s": events_per_s,
            "branches": len(small_trace),
        }
    )
    assert result.branches == len(small_trace)
