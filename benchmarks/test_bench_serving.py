"""Serving benches: concurrent-session throughput and latency tails.

Drives the load-generation harness against an in-process
:class:`~repro.serving.server.PredictionServer` at the ISSUE's
acceptance scale — at least 100 concurrent sessions, zero protocol
errors — and records throughput plus p50/p95/p99 round-trip latency.
Each run appends its numbers to ``BENCH_serving.json`` at the repo
root, keyed by commit, so the serving-performance trajectory across
the PR stack stays inspectable.
"""

import json
import subprocess
from pathlib import Path

import pytest

from repro.orchestration.registry import standard_registry
from repro.serving import PredictionServer, WarmSnapshotPool, run_load

SESSIONS = 100
SESSION_EVENTS = 300
BATCH = 64

_REPO_ROOT = Path(__file__).resolve().parent.parent
_TRAJECTORY_PATH = _REPO_ROOT / "BENCH_serving.json"
_RESULTS: list[dict] = []


def _current_commit() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=_REPO_ROOT,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return proc.stdout.strip() or "unknown"


@pytest.fixture(scope="module", autouse=True)
def _persist_trajectory():
    """Replace this commit's entries in the trajectory file at teardown."""
    yield
    if not _RESULTS:
        return
    commit = _current_commit()
    try:
        history = json.loads(_TRAJECTORY_PATH.read_text())
    except (OSError, ValueError):
        history = []
    if not isinstance(history, list):
        history = []
    history = [row for row in history if row.get("commit") != commit]
    for row in _RESULTS:
        history.append({"commit": commit, **row})
    _TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def _drive(server, benchmark, label, **load_kwargs):
    report = benchmark.pedantic(
        lambda: run_load(
            server.address,
            sessions=SESSIONS,
            session_events=SESSION_EVENTS,
            batch=BATCH,
            **load_kwargs,
        ),
        rounds=1,
        iterations=1,
    )
    assert report.errors == 0, report.error_messages
    assert report.sessions == SESSIONS
    benchmark.extra_info["throughput_eps"] = round(report.throughput_eps, 1)
    benchmark.extra_info["p99_ms"] = round(report.p99_ms, 3)
    _RESULTS.append(
        {
            "bench": label,
            "sessions": report.sessions,
            "events": report.events,
            "errors": report.errors,
            "throughput_eps": round(report.throughput_eps, 1),
            "p50_ms": round(report.p50_ms, 3),
            "p95_ms": round(report.p95_ms, 3),
            "p99_ms": round(report.p99_ms, 3),
        }
    )
    return report


def test_serving_cold_sessions(benchmark):
    server = PredictionServer(registry=standard_registry())
    server.start()
    try:
        _drive(server, benchmark, "cold-mixed", profile="mixed")
    finally:
        server.stop()


def test_serving_warm_sessions(benchmark, tmp_path):
    registry = standard_registry()
    pool = WarmSnapshotPool(
        registry,
        state_dir=str(tmp_path / "state"),
        warmup_branches=100,
        max_shards=32,
        branches=SESSION_EVENTS,
    )
    server = PredictionServer(registry=registry, pool=pool)
    server.start()
    try:
        report = _drive(
            server, benchmark, "warm-wild", profile="wild", warm=True, warmup=100
        )
        # Every distinct (config, workload) shard hydrates exactly once;
        # the other 90+ sessions reuse the resident snapshot.
        assert pool.stats()["hydrations"] <= 12
        # Warm sessions skip the 100-event warmup prefix (wild traces
        # may overshoot the requested budget by a scene, hence >=).
        assert report.events >= SESSIONS * (SESSION_EVENTS - 100)
    finally:
        server.stop()
