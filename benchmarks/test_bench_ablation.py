"""Ablation benches for the design choices DESIGN.md calls out.

Each bench measures the simulation of one design variant on a shared
trace and reports MPKI via benchmark extra info, so variants can be
compared across runs:

* BST counter style — deterministic 2-bit vs probabilistic 3-bit,
* positional history (RS.P in the index hash) on/off,
* folded history in the index hash on/off,
* the unfiltered recent-history window ``ht`` (0 / 8 / 16),
* segmented vs effectively-monolithic recency stacks for BF-TAGE.
"""

import pytest

from repro.core.bfneural import BFNeural, BFNeuralConfig
from repro.core.bftage import BFTage, BFTageConfig
from repro.sim import simulate


def run_and_report(benchmark, factory, trace):
    result = benchmark.pedantic(
        lambda: simulate(factory(), trace), rounds=1, iterations=1
    )
    benchmark.extra_info["mpki"] = round(result.mpki, 3)
    return result


@pytest.mark.parametrize("probabilistic", [False, True], ids=["bst-2bit", "bst-3bit-prob"])
def test_bst_counters(benchmark, small_trace, probabilistic):
    result = run_and_report(
        benchmark,
        lambda: BFNeural(BFNeuralConfig(probabilistic_bst=probabilistic)),
        small_trace,
    )
    assert result.misprediction_rate < 0.25


@pytest.mark.parametrize("positional", [True, False], ids=["pos-hist", "no-pos-hist"])
def test_positional_history(benchmark, small_trace, positional):
    result = run_and_report(
        benchmark,
        lambda: BFNeural(BFNeuralConfig(use_positional=positional)),
        small_trace,
    )
    assert result.misprediction_rate < 0.25


@pytest.mark.parametrize("folded", [True, False], ids=["fhist", "no-fhist"])
def test_folded_history(benchmark, small_trace, folded):
    result = run_and_report(
        benchmark,
        lambda: BFNeural(BFNeuralConfig(use_folded_hist=folded)),
        small_trace,
    )
    assert result.misprediction_rate < 0.25


@pytest.mark.parametrize("ht", [0, 8, 16], ids=["ht0", "ht8", "ht16"])
def test_unfiltered_window(benchmark, small_trace, ht):
    # ht=0 disables the conventional component entirely.
    config = BFNeuralConfig(ht=max(1, ht)) if ht else BFNeuralConfig(ht=1, wm_rows=2)
    result = run_and_report(benchmark, lambda: BFNeural(config), small_trace)
    assert result.misprediction_rate < 0.3


@pytest.mark.parametrize(
    "rs_size,label",
    [(8, "segmented-rs8"), (64, "near-monolithic-rs64")],
    ids=["segmented", "monolithic-ish"],
)
def test_segmentation_granularity(benchmark, small_trace, rs_size, label):
    """Bigger per-segment stacks approximate a monolithic RS; the paper
    argues cross-correlation makes the small segmented version enough."""
    config = BFTageConfig(rs_size=rs_size)
    result = run_and_report(benchmark, lambda: BFTage(config), small_trace)
    assert result.misprediction_rate < 0.3
