"""Benchmark: distributed campaign throughput vs the serial baseline.

Runs the same predictor × trace grid twice — once through ``run_plan``
with ``jobs=1`` and once through a localhost coordinator drained by two
executor processes — and records both wall-clocks plus the distribution
overhead ratio in the usual BENCH json.  The assertion is bit-identity,
not speedup: on a single box two executors mostly measure protocol and
process overhead, and the grid here is deliberately small enough that
the benchmark stays in the seconds range.
"""

import multiprocessing

import pytest

from repro.orchestration import CampaignPlan, TraceSpec, run_plan
from repro.orchestration.distserver import Coordinator
from repro.orchestration.remote import run_executor
from repro.orchestration.telemetry import monotonic
from repro.predictors import Bimodal, GShare

BENCH_TRACES = ["FP1", "INT1", "MM1", "SERV1"]
BENCH_BRANCHES = 3_000

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="executor processes rely on the fork start method",
)


def bench_registry():
    return {"bimodal": Bimodal, "gshare": GShare}


REGISTRY_REF = "benchmarks.test_bench_distribution:bench_registry"


def bench_plan(store_dir=None) -> CampaignPlan:
    return CampaignPlan(
        factories=bench_registry(),
        traces=[TraceSpec.suite(name, BENCH_BRANCHES) for name in BENCH_TRACES],
        store_dir=store_dir,
        manifest_path=store_dir / "manifest.json" if store_dir else None,
    )


def _executor_main(address):
    run_executor(address, registry_ref=REGISTRY_REF, poll_interval=0.05)


def distributed_run(store_dir, executors=2):
    coordinator = Coordinator(
        bench_plan(store_dir), registry_ref=REGISTRY_REF, linger_s=2.0
    )
    thread = coordinator.serve_background()
    ctx = multiprocessing.get_context("fork")
    workers = [
        ctx.Process(target=_executor_main, args=(coordinator.address,), daemon=True)
        for _ in range(executors)
    ]
    for worker in workers:
        worker.start()
    thread.join(timeout=300)
    for worker in workers:
        worker.join(timeout=30)
    return coordinator.results


@needs_fork
def test_distributed_vs_serial(benchmark, tmp_path):
    started = monotonic()
    serial = run_plan(bench_plan())
    serial_s = monotonic() - started

    started = monotonic()
    distributed = benchmark.pedantic(
        distributed_run, args=(tmp_path / "dist",), rounds=1, iterations=1
    )
    distributed_s = monotonic() - started

    assert distributed == serial  # bit-identical across the socket boundary
    overhead = distributed_s / serial_s if serial_s > 0 else float("inf")
    benchmark.extra_info["executors"] = 2
    benchmark.extra_info["tasks"] = len(BENCH_TRACES) * 2
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["distributed_s"] = round(distributed_s, 3)
    benchmark.extra_info["overhead_ratio"] = round(overhead, 3)
