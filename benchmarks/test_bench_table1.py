"""Benchmark: regenerate Table I (BF-TAGE storage budget)."""

from repro.experiments import table1_storage


def test_table1_storage(benchmark):
    report = benchmark(table1_storage.run, None)
    assert "Total" in report
    assert "51100" in report  # the paper's reference total appears
