"""Benchmark: checkpoint streaming overhead and warm-state reuse payoff.

Two costs bound the usefulness of the versioned-state layer:

* streaming periodic checkpoints must be nearly free at the production
  interval (``--checkpoint-every 100000``) — otherwise nobody leaves it
  on, and killed campaigns replay from zero;
* warm-state sharing must actually beat recomputing the warmup prefix
  for every ablation variant, since that is its whole reason to exist.

Both are measured at reduced scale and recorded in ``extra_info``; the
assertions use conservative floors so they hold on loaded CI boxes.
"""

from functools import partial
from pathlib import Path

from repro.orchestration import CampaignPlan, StateStore, run_plan
from repro.orchestration.telemetry import monotonic
from repro.predictors import GlobalPerceptron, ISLTage, TageConfig
from repro.sim import simulate
from repro.workloads import build_trace

CHECKPOINT_TRACE_BRANCHES = 120_000
CHECKPOINT_INTERVAL = 100_000

WARM_TRACE = "SPEC03"
WARM_TRACE_BRANCHES = 6_000
WARM_PREFIX = 4_000


def _best_of_interleaved(a, b, rounds: int) -> tuple[float, float]:
    """Min wall-clock of two workloads, alternating rounds so machine
    load drift hits both the same way instead of biasing one side."""
    best_a = best_b = float("inf")
    for _ in range(rounds):
        started = monotonic()
        a()
        best_a = min(best_a, monotonic() - started)
        started = monotonic()
        b()
        best_b = min(best_b, monotonic() - started)
    return best_a, best_b


def _perceptron() -> GlobalPerceptron:
    """The registry's mid-weight config: representative of what campaign
    tasks actually checkpoint (table-heavy, non-trivial per-branch cost),
    unlike gshare whose loop is so cheap one snapshot dominates it."""
    return GlobalPerceptron(rows=1024, history_length=64)


def test_checkpoint_streaming_overhead(benchmark, tmp_path):
    """Periodic checkpointing at the production interval costs <5%."""
    trace = build_trace("INT1", CHECKPOINT_TRACE_BRANCHES)
    store = StateStore(tmp_path / "state")

    def straight():
        simulate(_perceptron(), trace)

    def checkpointed():
        simulate(
            _perceptron(),
            trace,
            checkpoint_every=CHECKPOINT_INTERVAL,
            on_checkpoint=partial(store.save, "bench"),
        )

    straight_s, checkpointed_s = _best_of_interleaved(
        straight, checkpointed, rounds=5
    )
    benchmark.pedantic(checkpointed, rounds=1, iterations=1)

    overhead = checkpointed_s / straight_s - 1.0
    benchmark.extra_info["branches"] = CHECKPOINT_TRACE_BRANCHES
    benchmark.extra_info["interval"] = CHECKPOINT_INTERVAL
    benchmark.extra_info["straight_s"] = round(straight_s, 4)
    benchmark.extra_info["checkpointed_s"] = round(checkpointed_s, 4)
    benchmark.extra_info["overhead_pct"] = round(100.0 * overhead, 2)
    assert store.latest("bench") is not None  # it did stream a cut
    assert overhead < 0.05


def _isl_tage(num_tables: int) -> ISLTage:
    return ISLTage(TageConfig.for_tables(num_tables))


def warm_pair_plan(state_dir: Path) -> CampaignPlan:
    return CampaignPlan(
        factories={
            "src": partial(_isl_tage, 10),
            "variant": partial(_isl_tage, 10),
        },
        traces=[build_trace(WARM_TRACE, WARM_TRACE_BRANCHES)],
        state_dir=state_dir,
        warmup_branches=WARM_PREFIX,
        warm_share={"variant": "src"},
    )


def test_warm_state_reuse_speedup(benchmark, tmp_path):
    """A prewarmed state store beats recomputing the shared prefix.

    Cold run: the variant must simulate the source's warmup prefix
    itself before its measured region.  Warm run (same plan, store now
    holding the source's warm cut): the variant loads the cut and only
    simulates the measured suffix.
    """
    state = tmp_path / "state"

    started = monotonic()
    cold = run_plan(warm_pair_plan(state))
    cold_s = monotonic() - started

    started = monotonic()
    warm = benchmark.pedantic(
        run_plan, args=(warm_pair_plan(state),), rounds=1, iterations=1
    )
    warm_s = monotonic() - started

    assert warm == cold  # reuse never changes the numbers
    assert warm["variant"][0] == warm["src"][0]  # identical configs agree
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    benchmark.extra_info["trace"] = WARM_TRACE
    benchmark.extra_info["branches"] = WARM_TRACE_BRANCHES
    benchmark.extra_info["warmup"] = WARM_PREFIX
    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["warm_s"] = round(warm_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    # Theoretical ceiling here is ~1.5x (12k vs 8k simulated branches);
    # ask for a conservative slice of it.
    assert speedup > 1.1
