"""Benchmark: regenerate Figure 9 (BF-Neural optimization breakdown)."""

from benchmarks.conftest import bench_args
from repro.experiments import fig9_ablation


def test_fig9_ablation(benchmark):
    args = bench_args()
    report = benchmark.pedantic(fig9_ablation.run, args=(args,), rounds=1, iterations=1)
    assert "stage0" in report and "stage3" in report
    assert "average MPKI" in report
