"""Benchmark: regenerate Figure 10 (MPKI vs number of tagged tables).

The full 4..10 sweep is expensive; the bench sweeps {4, 7} which still
exercises both predictor families at two storage points.
"""

import pytest

from benchmarks.conftest import bench_args
from repro.experiments import fig10_tables


def test_fig10_tables(benchmark, monkeypatch):
    monkeypatch.setattr(fig10_tables, "TABLE_COUNTS", [4, 7])
    args = bench_args()
    report = benchmark.pedantic(fig10_tables.run, args=(args,), rounds=1, iterations=1)
    assert "ISL-TAGE" in report and "BF-ISL-TAGE" in report
