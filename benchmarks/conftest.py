"""Shared fixtures for the benchmark suite.

Benchmarks regenerate each paper table/figure at reduced scale (two
short traces, a few thousand branches) so the full suite runs in
minutes; the committed full-scale numbers live in EXPERIMENTS.md and
are produced by ``python -m repro.experiments.<name>``.
"""

import argparse

import pytest

BENCH_TRACES = ["FP1", "INT1"]
BENCH_BRANCHES = 2_000


def bench_args(extra=None):
    """The tiny-scale CLI namespace every figure bench runs with."""
    from repro.experiments import common

    parser = common.make_parser("bench")
    argv = [
        "--branches", str(BENCH_BRANCHES),
        "--traces", *BENCH_TRACES,
        "--cache-dir", "",
    ]
    if extra:
        argv += extra
    return parser.parse_args(argv)


@pytest.fixture(scope="session")
def small_trace():
    """One 6000-branch trace shared by predictor/ablation benches."""
    from repro.workloads import build_trace

    return build_trace("SPEC03", 6_000)


@pytest.fixture(scope="session")
def tiny_args():
    return bench_args()
