"""Benchmark: regenerate Figure 12 (per-table branch-hit histograms)."""

from benchmarks.conftest import bench_args
from repro.experiments import fig12_hits


def test_fig12_hits(benchmark):
    args = bench_args()
    report = benchmark.pedantic(fig12_hits.run, args=(args,), rounds=1, iterations=1)
    assert "mean provider table" in report
    assert "TAGE-15 %hits" in report
