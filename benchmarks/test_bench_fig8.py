"""Benchmark: regenerate Figure 8 (OH-SNAP vs TAGE vs BF-Neural MPKI)."""

from benchmarks.conftest import bench_args
from repro.experiments import fig8_mpki


def test_fig8_mpki(benchmark):
    args = bench_args()
    report = benchmark.pedantic(fig8_mpki.run, args=(args,), rounds=1, iterations=1)
    assert "OH-SNAP" in report and "BF-Neural" in report and "TAGE" in report
    assert "Avg." in report
