"""Benchmark: regenerate Figure 11 (relative improvement vs TAGE-10)."""

from benchmarks.conftest import bench_args
from repro.experiments import fig11_relative


def test_fig11_relative(benchmark):
    args = bench_args()
    report = benchmark.pedantic(fig11_relative.run, args=(args,), rounds=1, iterations=1)
    assert "TAGE-15 impr %" in report
    assert "BF-TAGE-10 impr %" in report
