"""Benchmark: orchestration speedup and cache-hit fast-path latency.

Measures the two numbers the orchestration engine exists for: wall-clock
speedup of ``jobs=N`` over the serial path on a predictor × trace grid,
and the latency of a fully cached campaign (every task served from the
content-addressed store without simulating).  Both land in the usual
BENCH json via ``benchmark.extra_info``.

The speedup assertion only arms on boxes with >= 4 cores (the
acceptance grid); on smaller machines the numbers are still recorded.
"""

import multiprocessing
import os
from functools import partial

import pytest

from repro.orchestration import CampaignPlan, Telemetry, TraceSpec, run_plan
from repro.orchestration.telemetry import monotonic
from repro.predictors import ISLTage, TageConfig

GRID_TRACES = ["FP1", "INT1", "MM1", "SERV1"]
GRID_BRANCHES = 3_000

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel scheduler requires the fork start method",
)


def _isl_tage(num_tables: int) -> ISLTage:
    return ISLTage(TageConfig.for_tables(num_tables))


def grid_plan(jobs: int, store_dir=None) -> CampaignPlan:
    return CampaignPlan(
        factories={"isl-tage10": partial(_isl_tage, 10)},
        traces=[TraceSpec.suite(name, GRID_BRANCHES) for name in GRID_TRACES],
        store_dir=store_dir,
        jobs=jobs,
    )


@needs_fork
def test_campaign_speedup(benchmark):
    jobs = os.cpu_count() or 1

    started = monotonic()
    serial = run_plan(grid_plan(jobs=1))
    serial_s = monotonic() - started

    started = monotonic()
    parallel = benchmark.pedantic(
        run_plan, args=(grid_plan(jobs=jobs),), rounds=1, iterations=1
    )
    parallel_s = monotonic() - started

    assert parallel == serial  # bit-identical results whatever jobs was
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["tasks"] = len(GRID_TRACES)
    if jobs >= 4:
        assert speedup > 1.5


def test_cache_hit_fast_path(benchmark, tmp_path):
    store = tmp_path / "store"
    run_plan(grid_plan(jobs=1, store_dir=store))  # prewarm

    def cached_run():
        telemetry = Telemetry()
        results = run_plan(grid_plan(jobs=1, store_dir=store), telemetry)
        return results, telemetry

    (results, telemetry) = benchmark.pedantic(cached_run, rounds=3, iterations=1)
    assert telemetry.cache_hits == len(GRID_TRACES)
    assert telemetry.simulated == 0
    per_hit_ms = 1000.0 * telemetry.elapsed_s() / len(GRID_TRACES)
    benchmark.extra_info["tasks"] = len(GRID_TRACES)
    benchmark.extra_info["per_hit_ms"] = round(per_hit_ms, 3)
