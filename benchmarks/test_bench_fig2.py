"""Benchmark: regenerate Figure 2 (biased-branch fractions)."""

from benchmarks.conftest import bench_args
from repro.experiments import fig2_bias


def test_fig2_bias(benchmark):
    args = bench_args()
    report = benchmark(fig2_bias.run, args)
    assert "% biased dyn" in report
    assert "FP1" in report and "INT1" in report
