#!/bin/bash
# Regenerate every paper table/figure. Results land in results/, sim
# results are cached in .bfbp-cache/ so re-runs are incremental.
set -x
cd /root/repo
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}
# Static analysis first: all six rule families (hardware
# faithfulness, determinism taint, lock discipline, schema drift,
# hot-path perf, whole-program concurrency) plus the storage-budget
# audit. A violation, a stale baseline entry or a blown budget should
# stop the campaign before hours of simulation, not after.
python3 -m repro.analysis src/ --json > results/analysis.json || {
    echo STATIC_ANALYSIS_FAILED
    exit 1
}
python3 -m repro.analysis src/ --no-audit --fail-on-stale \
    --format json > results/analysis-findings.jsonl || {
    echo STATIC_ANALYSIS_FAILED
    exit 1
}
# Dedicated perf gate: the event-loop/predictor hot closure must stay
# allocation-free (or carry a justified pragma/baseline entry).
python3 -m repro.analysis src/ --family perf --no-audit --fail-on-stale || {
    echo HOT_PATH_PERF_LINT_FAILED
    exit 1
}
# Dedicated concurrency gate: no lock-order cycles, no blocking work
# or callbacks inside critical sections, and every protocol send
# sequence admitted by the declared PROTOCOL_FSMS machines.
python3 -m repro.analysis src/ --family concurrency --no-audit --fail-on-stale || {
    echo CONCURRENCY_LINT_FAILED
    exit 1
}
python3 -m repro.experiments.table1_storage --output results/table1.txt > /dev/null 2>&1
python3 -m repro.experiments.fig2_bias     --output results/fig2.txt  > /dev/null 2>&1
python3 -m repro.experiments.fig12_hits    --verbose --output results/fig12.txt
python3 -m repro.experiments.fig10_tables  --verbose --output results/fig10.txt
python3 -m repro.experiments.fig11_relative --verbose --output results/fig11.txt
python3 -m repro.experiments.fig8_mpki     --verbose --output results/fig8.txt
python3 -m repro.experiments.fig9_ablation --verbose --output results/fig9.txt
python3 -m repro.experiments.energy_analysis --output results/energy.txt > /dev/null 2>&1
python3 -m repro.experiments.profile_assisted --output results/profile_assisted.txt > /dev/null 2>&1
# Orchestrated campaign: the same predictors fanned over the suite via
# the process-pool engine, with checkpoint/resume and JSONL telemetry.
# Content-addressed caching means figure runs above already warmed most
# of this grid.
python3 -m repro campaign --predictors oh-snap tage15 bf-neural \
    --jobs "$(nproc)" --telemetry results/campaign-telemetry.jsonl \
    --output results/campaign.txt --quiet
# Batch-kernel stage: the ported predictors fanned over the suite
# through the vectorized kernel (docs/vectorization.md). Fingerprints
# carry |kernel=vectorized, so this populates its own cache entries;
# the differential sweep first proves bit-identity against the scalar
# oracle on all 40 suite + 4 wild traces, then the throughput benches
# append kernel-tagged rows to BENCH_throughput.json and gate >20%
# events/s regressions against the previous commit's rows.
REPRO_FULL_DIFFERENTIAL=1 python3 -m pytest tests/test_batchkernel.py \
    -m vectorized -q || {
    echo BATCH_KERNEL_DIFFERENTIAL_FAILED
    exit 1
}
python3 -m repro campaign --kernel vectorized \
    --predictors bimodal gshare perceptron bf-neural \
    --jobs "$(nproc)" --telemetry results/campaign-vectorized-telemetry.jsonl \
    --output results/campaign-vectorized.txt --quiet
python3 -m pytest benchmarks/test_bench_throughput.py -q \
    -k "vectorized or regression_gate" || {
    echo BATCH_KERNEL_BENCH_FAILED
    exit 1
}
# Workload-suite stage (docs/workloads.md): resolve the checked-in demo
# manifest (synthetic + generator + pinned import + mix entries), prove
# the interchange converter round-trips bit-identically through both
# text dialects, then run the imported + mixed entries through the
# campaign engine with the scalar and the vectorized kernel. The two
# result files must be identical — same MPKI on the same content-
# addressed suite.
python3 -m repro suite --manifest examples/suites/demo.toml || {
    echo SUITE_MANIFEST_RESOLVE_FAILED
    exit 1
}
python3 -m repro convert examples/suites/imported_fp1.csv results/wl.bfbp
python3 -m repro convert results/wl.bfbp results/wl.bft
python3 -m repro convert results/wl.bft results/wl2.bfbp
python3 -m repro convert results/wl2.bfbp results/wl.csv
cmp results/wl.bfbp results/wl2.bfbp || {
    echo INTERCHANGE_ROUND_TRIP_FAILED
    exit 1
}
cmp examples/suites/imported_fp1.csv results/wl.csv || {
    echo INTERCHANGE_ROUND_TRIP_FAILED
    exit 1
}
python3 -m repro campaign "@examples/suites/demo.toml" \
    --predictors gshare bf-neural \
    --telemetry results/campaign-suite-telemetry.jsonl \
    --output results/campaign-suite.txt --quiet
python3 -m repro campaign "@examples/suites/demo.toml" --kernel vectorized \
    --predictors gshare \
    --output results/campaign-suite-vectorized.txt --quiet
grep gshare results/campaign-suite.txt | cmp - <(grep gshare results/campaign-suite-vectorized.txt) || {
    echo SUITE_KERNEL_MISMATCH
    exit 1
}
# Checkpoint/resume stage: the heavyweight configs again with mid-trace
# state checkpoints streaming into .bfbp-cache/state/. If this script is
# killed here, re-running it resumes every unfinished task from its last
# cut (task_resume events in the telemetry) instead of branch zero.
python3 -m repro campaign SPEC02 SPEC08 SERV3 --predictors bf-neural bf-tage10 \
    --checkpoint-every 10000 \
    --telemetry results/campaign-resume-telemetry.jsonl \
    --output results/campaign-resume.txt --quiet
# Record a canonical state hash for one trained predictor so two
# checkouts can check bit-identity of the whole simulation stack.
python3 -m repro state hash --predictor gshare --trace SPEC02 \
    > results/state-hash.txt
# Distribution stage: the same grid served by a loopback coordinator and
# drained by two executor processes (docs/distribution.md). The shared
# content-addressed store means this is a pure cache replay when the
# campaign stages above already ran; kill -9 any worker mid-run and the
# lease returns to the queue.
python3 -m repro campaign serve SPEC02 SERV3 --predictors bf-neural bf-tage10 \
    --checkpoint-every 10000 --lease-ttl 60 \
    --telemetry results/distributed-telemetry.jsonl \
    --output results/distributed.txt --quiet > results/distributed-serve.log &
SERVE_PID=$!
until ADDRESS=$(grep -om1 '[0-9.]*:[0-9]*$' results/distributed-serve.log); do
    kill -0 "$SERVE_PID" || { echo DISTRIBUTED_SERVE_FAILED; exit 1; }
    sleep 0.2
done
python3 -m repro campaign work --connect "$ADDRESS" --executor-id stage-ex0 --quiet &
python3 -m repro campaign work --connect "$ADDRESS" --executor-id stage-ex1 --quiet &
wait
# Serving stage: the always-on prediction service warm-started from the
# same state store, load-tested with 100 concurrent sessions mixing
# calibrated and adversarial wild-branch traffic (docs/serving.md). The
# loadgen exits non-zero on any protocol error and persists the
# latency percentiles.
python3 -m repro serve-predict --port 0 --state-dir .bfbp-cache/state \
    --warmup 500 --branches 2000 \
    --telemetry results/serving-telemetry.jsonl \
    > results/serving-serve.log &
PREDICT_PID=$!
until PREDICT_ADDRESS=$(grep -om1 '[0-9.]*:[0-9]*$' results/serving-serve.log); do
    kill -0 "$PREDICT_PID" || { echo SERVE_PREDICT_FAILED; exit 1; }
    sleep 0.2
done
python3 -m repro loadgen --connect "$PREDICT_ADDRESS" --profile mixed \
    --sessions 100 --events 2000 --batch 256 \
    --output results/serving-loadgen.json || {
    kill "$PREDICT_PID"
    echo SERVING_LOADGEN_FAILED
    exit 1
}
python3 -m repro loadgen --connect "$PREDICT_ADDRESS" --profile wild \
    --sessions 100 --events 2000 --batch 256 --warm --warmup 500 \
    --output results/serving-loadgen-warm.json || {
    kill "$PREDICT_PID"
    echo SERVING_LOADGEN_FAILED
    exit 1
}
kill "$PREDICT_PID"
echo ALL_EXPERIMENTS_DONE
