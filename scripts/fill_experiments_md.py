#!/usr/bin/env python3
"""Splice headline numbers from results/*.txt into EXPERIMENTS.md."""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"


def grab(name, pattern):
    path = RESULTS / name
    if not path.exists():
        return None
    match = re.search(pattern, path.read_text())
    return match.group(0) if match else None


def main():
    md = (ROOT / "EXPERIMENTS.md").read_text()
    fills = {
        "RESULT_FIG2": grab("fig2.txt", r"average biased dynamic fraction: [\d.]+%"),
        "RESULT_FIG8": grab("fig8.txt", r"BF-Neural vs OH-SNAP: [+\-][\d.]+% MPKI improvement"),
        "RESULT_FIG9": (grab("fig9.txt", r"average MPKI: [\d. >-]+") or "").replace(
            "average MPKI: ", ""
        ),
        "RESULT_FIG10": grab("fig10.txt", r"BF-ISL-TAGE better at table counts: [^(\n]+"),
        "RESULT_FIG11": grab("fig11.txt", r"tracks TAGE-15[^\n]*\n?[^\n]*of them"),
        "RESULT_FIG12": grab("fig12.txt", r"lower mean table on \d+/\d+ traces"),
    }
    for key, value in fills.items():
        if value:
            md = md.replace(key, value.strip())
        else:
            md = md.replace(key, "(see results/)")
    (ROOT / "EXPERIMENTS.md").write_text(md)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
