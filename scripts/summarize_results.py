#!/usr/bin/env python3
"""Extract the headline numbers from results/*.txt for EXPERIMENTS.md.

Run after ./run_all_experiments.sh:

    python scripts/summarize_results.py
"""

import re
import sys
from pathlib import Path

RESULTS = Path(__file__).resolve().parent.parent / "results"


def grab(name: str, pattern: str, group: int = 0) -> str:
    path = RESULTS / name
    if not path.exists():
        return f"<{name} missing>"
    match = re.search(pattern, path.read_text())
    return match.group(group) if match else f"<no match in {name}>"


def main() -> int:
    print("fig2 average:", grab("fig2.txt", r"average biased dynamic fraction: [\d.]+%"))
    print("fig8 summary:", grab("fig8.txt", r"BF-Neural vs OH-SNAP.*"))
    print("fig8 vs tage:", grab("fig8.txt", r"BF-Neural vs TAGE.*"))
    print("fig9 averages:", grab("fig9.txt", r"average MPKI: .*"))
    print("fig10 verdict:", grab("fig10.txt", r"BF-ISL-TAGE better at table counts: .*"))
    print("fig11 verdict:", grab("fig11.txt", r"BF-TAGE-10 tracks TAGE-15[\s\S]*?\)"))
    print("fig12 verdict:", grab("fig12.txt", r"BF-TAGE's hit distribution[\s\S]*?\)"))
    print("table1 totals:", grab("table1.txt", r"Total\s+\d+\s+\d+"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
